package sat

import (
	"math/rand"
	"testing"
)

func TestLitEncoding(t *testing.T) {
	v := Var(5)
	p, n := PosLit(v), NegLit(v)
	if p.Var() != v || n.Var() != v {
		t.Fatalf("Var round trip failed: %v %v", p.Var(), n.Var())
	}
	if p.Sign() || !n.Sign() {
		t.Fatalf("sign mismatch")
	}
	if p.Not() != n || n.Not() != p {
		t.Fatalf("Not is not involutive")
	}
	if MkLit(v, false) != p || MkLit(v, true) != n {
		t.Fatalf("MkLit mismatch")
	}
	if p.String() != "5" || n.String() != "-5" {
		t.Fatalf("String mismatch: %q %q", p, n)
	}
}

func TestLBool(t *testing.T) {
	if LTrue.Not() != LFalse || LFalse.Not() != LTrue || LUndef.Not() != LUndef {
		t.Fatal("LBool.Not broken")
	}
	if LTrue.String() != "true" || LFalse.String() != "false" || LUndef.String() != "undef" {
		t.Fatal("LBool.String broken")
	}
}

func TestEmptyFormulaIsSat(t *testing.T) {
	s := New()
	if st := s.Solve(); st != Sat {
		t.Fatalf("empty formula: got %v", st)
	}
}

func TestUnitClause(t *testing.T) {
	s := New()
	a := s.NewVar()
	if err := s.AddClause(PosLit(a)); err != nil {
		t.Fatal(err)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	if !s.Model(a) {
		t.Fatal("unit literal not true in model")
	}
}

func TestContradictoryUnits(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(PosLit(a))
	s.AddClause(NegLit(a))
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v", st)
	}
	if s.Okay() {
		t.Fatal("solver should be permanently unsat")
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	s.NewVar()
	s.AddClause()
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v", st)
	}
}

func TestTautologyDropped(t *testing.T) {
	s := New()
	a := s.NewVar()
	if err := s.AddClause(PosLit(a), NegLit(a)); err != nil {
		t.Fatal(err)
	}
	if s.Stats.NumClauses != 0 {
		t.Fatal("tautology should not be stored")
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
}

func TestUnallocatedVariableRejected(t *testing.T) {
	s := New()
	if err := s.AddClause(PosLit(Var(7))); err == nil {
		t.Fatal("expected error for unallocated variable")
	}
	if err := s.AddPB([]PBTerm{{Coef: 1, Lit: PosLit(Var(7))}}, 1); err == nil {
		t.Fatal("expected error for unallocated PB variable")
	}
}

func TestSimpleImplicationChain(t *testing.T) {
	s := New()
	vars := make([]Var, 20)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	for i := 0; i+1 < len(vars); i++ {
		s.AddClause(NegLit(vars[i]), PosLit(vars[i+1]))
	}
	s.AddClause(PosLit(vars[0]))
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	for i, v := range vars {
		if !s.Model(v) {
			t.Fatalf("var %d should be true in model", i)
		}
	}
}

func TestPigeonhole(t *testing.T) {
	// n+1 pigeons, n holes: classically UNSAT and exercises learning.
	for n := 2; n <= 6; n++ {
		s := New()
		x := make([][]Var, n+1)
		for p := range x {
			x[p] = make([]Var, n)
			for h := range x[p] {
				x[p][h] = s.NewVar()
			}
		}
		for p := 0; p <= n; p++ {
			lits := make([]Lit, n)
			for h := 0; h < n; h++ {
				lits[h] = PosLit(x[p][h])
			}
			s.AddClause(lits...)
		}
		for h := 0; h < n; h++ {
			for p1 := 0; p1 <= n; p1++ {
				for p2 := p1 + 1; p2 <= n; p2++ {
					s.AddClause(NegLit(x[p1][h]), NegLit(x[p2][h]))
				}
			}
		}
		if st := s.Solve(); st != Unsat {
			t.Fatalf("PHP(%d): got %v", n, st)
		}
	}
}

func TestPigeonholeSatVariant(t *testing.T) {
	// n pigeons, n holes: SAT; the model must be a perfect matching.
	n := 6
	s := New()
	x := make([][]Var, n)
	for p := range x {
		x[p] = make([]Var, n)
		for h := range x[p] {
			x[p][h] = s.NewVar()
		}
	}
	for p := 0; p < n; p++ {
		lits := make([]Lit, n)
		for h := 0; h < n; h++ {
			lits[h] = PosLit(x[p][h])
		}
		s.AddClause(lits...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 < n; p1++ {
			for p2 := p1 + 1; p2 < n; p2++ {
				s.AddClause(NegLit(x[p1][h]), NegLit(x[p2][h]))
			}
		}
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	used := make([]bool, n)
	for p := 0; p < n; p++ {
		cnt := 0
		for h := 0; h < n; h++ {
			if s.Model(x[p][h]) {
				if used[h] {
					t.Fatalf("hole %d used twice", h)
				}
				used[h] = true
				cnt++
			}
		}
		if cnt < 1 {
			t.Fatalf("pigeon %d unplaced", p)
		}
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	if st := s.Solve(NegLit(a), NegLit(b)); st != Unsat {
		t.Fatalf("assuming both false: got %v", st)
	}
	// The formula itself must remain satisfiable.
	if st := s.Solve(); st != Sat {
		t.Fatalf("without assumptions: got %v", st)
	}
	if st := s.Solve(NegLit(a)); st != Sat {
		t.Fatalf("assuming ¬a: got %v", st)
	}
	if s.Model(a) || !s.Model(b) {
		t.Fatal("model must honor assumption ¬a and imply b")
	}
}

func TestAssumptionAlreadyForced(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a))
	s.AddClause(NegLit(a), PosLit(b))
	if st := s.Solve(PosLit(a), PosLit(b)); st != Sat {
		t.Fatalf("got %v", st)
	}
	if st := s.Solve(NegLit(a)); st != Unsat {
		t.Fatalf("assumption contradicting a unit: got %v", st)
	}
	if !s.Okay() {
		t.Fatal("assumption failure must not poison the solver")
	}
}

func TestIncrementalAddAfterSolve(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	s.AddClause(NegLit(a))
	s.AddClause(NegLit(b), PosLit(c))
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	if s.Model(a) || !s.Model(b) || !s.Model(c) {
		t.Fatal("model inconsistent with added clauses")
	}
	s.AddClause(NegLit(c))
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v", st)
	}
}

func TestPBAtLeast(t *testing.T) {
	s := New()
	vars := make([]Var, 5)
	terms := make([]PBTerm, 5)
	for i := range vars {
		vars[i] = s.NewVar()
		terms[i] = PBTerm{Coef: 1, Lit: PosLit(vars[i])}
	}
	// At least 3 of 5.
	s.AddPB(terms, 3)
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	cnt := 0
	for _, v := range vars {
		if s.Model(v) {
			cnt++
		}
	}
	if cnt < 3 {
		t.Fatalf("model sets only %d variables", cnt)
	}
}

func TestPBAtMostOne(t *testing.T) {
	s := New()
	vars := make([]Var, 6)
	lits := make([]Lit, 6)
	for i := range vars {
		vars[i] = s.NewVar()
		lits[i] = PosLit(vars[i])
	}
	s.AddAtMostOne(lits...)
	s.AddClause(lits...) // at least one
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	cnt := 0
	for _, v := range vars {
		if s.Model(v) {
			cnt++
		}
	}
	if cnt != 1 {
		t.Fatalf("exactly-one violated: %d set", cnt)
	}
}

func TestPBWeightedInfeasible(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	// 2a + 3b ≥ 6 is impossible (max 5).
	s.AddPB([]PBTerm{{2, PosLit(a)}, {3, PosLit(b)}}, 6)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v", st)
	}
}

func TestPBForcesAll(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	// 1a+1b+1c ≥ 3 forces all true at root level.
	s.AddPB([]PBTerm{{1, PosLit(a)}, {1, PosLit(b)}, {1, PosLit(c)}}, 3)
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	if !s.Model(a) || !s.Model(b) || !s.Model(c) {
		t.Fatal("PB should force all variables true")
	}
}

func TestPBNegativeCoefficients(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	// 3a - 2b ≥ 1  ⇔  3a + 2¬b ≥ 3 : satisfiable, needs a true.
	s.AddPB([]PBTerm{{3, PosLit(a)}, {-2, PosLit(b)}}, 1)
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	if 3*b2i(s.Model(a))-2*b2i(s.Model(b)) < 1 {
		t.Fatalf("model violates constraint: a=%v b=%v", s.Model(a), s.Model(b))
	}
}

func TestPBDuplicateVariableMerged(t *testing.T) {
	s := New()
	a := s.NewVar()
	// 2a + 3a ≥ 4 ⇔ 5a ≥ 4 ⇒ a.
	s.AddPB([]PBTerm{{2, PosLit(a)}, {3, PosLit(a)}}, 4)
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	if !s.Model(a) {
		t.Fatal("a must be forced")
	}
}

func TestPBOppositeLiteralsCancel(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	// 2a + 2¬a + b ≥ 2 is trivially true (2a+2¬a = 2).
	if err := s.AddPB([]PBTerm{{2, PosLit(a)}, {2, NegLit(a)}, {1, PosLit(b)}}, 2); err != nil {
		t.Fatal(err)
	}
	if s.Stats.NumPB != 0 {
		t.Fatal("trivially true PB should be dropped")
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// --- randomized cross-validation against brute force ---

type rndClause []Lit

type rndPB struct {
	terms []PBTerm
	bound int64
}

// bruteForce enumerates all assignments of nVars variables and reports
// whether any satisfies all clauses and PB constraints.
func bruteForce(nVars int, clauses []rndClause, pbs []rndPB) bool {
	for mask := 0; mask < 1<<nVars; mask++ {
		val := func(l Lit) bool {
			b := mask&(1<<(int(l.Var())-1)) != 0
			if l.Sign() {
				return !b
			}
			return b
		}
		ok := true
		for _, c := range clauses {
			sat := false
			for _, l := range c {
				if val(l) {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			for _, p := range pbs {
				var sum int64
				for _, t := range p.terms {
					if val(t.Lit) {
						sum += t.Coef
					}
				}
				if sum < p.bound {
					ok = false
					break
				}
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandomCNFAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 300; iter++ {
		nVars := 3 + rng.Intn(8)
		nClauses := 1 + rng.Intn(30)
		s := New()
		vars := make([]Var, nVars)
		for i := range vars {
			vars[i] = s.NewVar()
		}
		var clauses []rndClause
		for i := 0; i < nClauses; i++ {
			n := 1 + rng.Intn(4)
			c := make(rndClause, n)
			for j := range c {
				c[j] = MkLit(vars[rng.Intn(nVars)], rng.Intn(2) == 0)
			}
			clauses = append(clauses, c)
			s.AddClause(c...)
		}
		want := bruteForce(nVars, clauses, nil)
		got := s.Solve() == Sat
		if got != want {
			t.Fatalf("iter %d: solver=%v brute=%v clauses=%v", iter, got, want, clauses)
		}
		if got {
			// Verify the model actually satisfies every clause.
			for _, c := range clauses {
				sat := false
				for _, l := range c {
					if s.ModelLit(l) {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("iter %d: model violates clause %v", iter, c)
				}
			}
		}
	}
}

func TestRandomPBAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 300; iter++ {
		nVars := 3 + rng.Intn(7)
		s := New()
		vars := make([]Var, nVars)
		for i := range vars {
			vars[i] = s.NewVar()
		}
		var clauses []rndClause
		var pbs []rndPB
		for i, n := 0, 1+rng.Intn(6); i < n; i++ {
			k := 1 + rng.Intn(4)
			terms := make([]PBTerm, k)
			var maxSum int64
			for j := range terms {
				coef := int64(1 + rng.Intn(5))
				if rng.Intn(4) == 0 {
					coef = -coef
				}
				terms[j] = PBTerm{Coef: coef, Lit: MkLit(vars[rng.Intn(nVars)], rng.Intn(2) == 0)}
				if coef > 0 {
					maxSum += coef
				}
			}
			bound := int64(rng.Intn(int(maxSum+3))) - 1
			pbs = append(pbs, rndPB{terms: terms, bound: bound})
			s.AddPB(terms, bound)
		}
		for i, n := 0, rng.Intn(8); i < n; i++ {
			k := 1 + rng.Intn(3)
			c := make(rndClause, k)
			for j := range c {
				c[j] = MkLit(vars[rng.Intn(nVars)], rng.Intn(2) == 0)
			}
			clauses = append(clauses, c)
			s.AddClause(c...)
		}
		want := bruteForce(nVars, clauses, pbs)
		got := s.Solve() == Sat
		if got != want {
			t.Fatalf("iter %d: solver=%v brute=%v pbs=%v clauses=%v", iter, got, want, pbs, clauses)
		}
		if got {
			for _, p := range pbs {
				var sum int64
				for _, term := range p.terms {
					if s.ModelLit(term.Lit) {
						sum += term.Coef
					}
				}
				if sum < p.bound {
					t.Fatalf("iter %d: model violates PB %v (sum %d)", iter, p, sum)
				}
			}
		}
	}
}

func TestRandomAssumptionsConsistency(t *testing.T) {
	// Solving with assumptions must agree with solving a copy where the
	// assumptions were added as unit clauses.
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 100; iter++ {
		nVars := 4 + rng.Intn(6)
		build := func() (*Solver, []Var) {
			s := New()
			vars := make([]Var, nVars)
			for i := range vars {
				vars[i] = s.NewVar()
			}
			return s, vars
		}
		s1, v1 := build()
		s2, v2 := build()
		r2 := rand.New(rand.NewSource(int64(iter)))
		r1 := rand.New(rand.NewSource(int64(iter)))
		gen := func(s *Solver, vars []Var, rng *rand.Rand) {
			for i, n := 0, 5+rng.Intn(15); i < n; i++ {
				k := 1 + rng.Intn(3)
				c := make([]Lit, k)
				for j := range c {
					c[j] = MkLit(vars[rng.Intn(nVars)], rng.Intn(2) == 0)
				}
				s.AddClause(c...)
			}
		}
		gen(s1, v1, r1)
		gen(s2, v2, r2)
		nAssume := 1 + rng.Intn(3)
		var as1, as2 []Lit
		for i := 0; i < nAssume; i++ {
			idx := rng.Intn(nVars)
			sign := rng.Intn(2) == 0
			as1 = append(as1, MkLit(v1[idx], sign))
			as2 = append(as2, MkLit(v2[idx], sign))
		}
		for _, l := range as2 {
			s2.AddClause(l)
		}
		got := s1.Solve(as1...)
		want := s2.Solve()
		if (got == Sat) != (want == Sat) {
			t.Fatalf("iter %d: assumptions %v vs units %v", iter, got, want)
		}
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	s.AddClause(NegLit(a), PosLit(b))
	s.Solve()
	if s.Stats.NumVars != 2 || s.Stats.NumClauses != 2 {
		t.Fatalf("stats: %+v", s.Stats)
	}
}

func TestMaxConflictsBudget(t *testing.T) {
	// A hard pigeonhole instance with a tiny budget must return Unknown.
	n := 8
	s := New()
	s.MaxConflicts = 5
	x := make([][]Var, n+1)
	for p := range x {
		x[p] = make([]Var, n)
		for h := range x[p] {
			x[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ {
		lits := make([]Lit, n)
		for h := 0; h < n; h++ {
			lits[h] = PosLit(x[p][h])
		}
		s.AddClause(lits...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(NegLit(x[p1][h]), NegLit(x[p2][h]))
			}
		}
	}
	if st := s.Solve(); st != Unknown {
		t.Fatalf("got %v, want Unknown under tiny budget", st)
	}
	s.MaxConflicts = 0
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v after lifting budget", st)
	}
}

func TestClauseDBReduction(t *testing.T) {
	// Force a tiny learnt-clause budget so reduceDB must fire on a
	// learning-heavy instance.
	s := New()
	s.maxLearnt = 16
	addPigeonhole(s, 6)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v", st)
	}
	if s.Stats.LearntPruned == 0 {
		t.Fatal("expected clause-DB reductions under a tiny budget")
	}
}

func TestRestartsHappen(t *testing.T) {
	s := New()
	addPigeonhole(s, 7)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v", st)
	}
	if s.Stats.Restarts == 0 {
		t.Fatal("a 4k-conflict run must restart at least once")
	}
}

func TestSolveTwiceKeepsLearnts(t *testing.T) {
	// Re-solving the same hard formula must be much cheaper thanks to
	// retained learnt clauses (the §7 mechanism at solver level).
	s := New()
	addPigeonhole(s, 6)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v", st)
	}
	// The solver is permanently unsat; ok flag short-circuits.
	before := s.Stats.Conflicts
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v", st)
	}
	if s.Stats.Conflicts != before {
		t.Fatal("re-solving an unsat formula must not search again")
	}
}

func TestAssumptionReSolveCheaper(t *testing.T) {
	// SAT under assumptions: the second solve with the same assumption
	// must reuse learning (fewer additional conflicts than the first).
	s := New()
	x := make([][]Var, 8)
	for p := range x {
		x[p] = make([]Var, 8)
		for h := range x[p] {
			x[p][h] = s.NewVar()
		}
	}
	for p := 0; p < 8; p++ {
		lits := make([]Lit, 8)
		for h := 0; h < 8; h++ {
			lits[h] = PosLit(x[p][h])
		}
		s.AddClause(lits...)
	}
	for h := 0; h < 8; h++ {
		for p1 := 0; p1 < 8; p1++ {
			for p2 := p1 + 1; p2 < 8; p2++ {
				s.AddClause(NegLit(x[p1][h]), NegLit(x[p2][h]))
			}
		}
	}
	assumption := NegLit(x[0][0])
	if st := s.Solve(assumption); st != Sat {
		t.Fatalf("got %v", st)
	}
	first := s.Stats.Conflicts
	if st := s.Solve(assumption); st != Sat {
		t.Fatalf("got %v", st)
	}
	second := s.Stats.Conflicts - first
	if second > first+8 {
		t.Fatalf("re-solve did not benefit from learning: %d then %d", first, second)
	}
}

func TestEnumerateModels(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	// a ∨ b, projected to {a,b}: models (1,0),(0,1),(1,1) → 3 classes.
	s.AddClause(PosLit(a), PosLit(b))
	_ = c
	var seen []map[Var]bool
	n := s.EnumerateModels([]Var{a, b}, 0, func(m map[Var]bool) bool {
		cp := map[Var]bool{a: m[a], b: m[b]}
		seen = append(seen, cp)
		return true
	})
	if n != 3 || len(seen) != 3 {
		t.Fatalf("enumerated %d projections, want 3", n)
	}
	uniq := map[[2]bool]bool{}
	for _, m := range seen {
		key := [2]bool{m[a], m[b]}
		if !m[a] && !m[b] {
			t.Fatal("model violates a∨b")
		}
		if uniq[key] {
			t.Fatal("duplicate projection")
		}
		uniq[key] = true
	}
}

func TestEnumerateModelsLimit(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	if n := s.EnumerateModels([]Var{a, b}, 2, nil); n != 2 {
		t.Fatalf("limit ignored: %d", n)
	}
}

func TestEnumerateModelsEarlyStop(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	n := s.EnumerateModels([]Var{a, b}, 0, func(map[Var]bool) bool { return false })
	if n != 1 {
		t.Fatalf("early stop ignored: %d", n)
	}
}

func TestEnumerateModelsUnsat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(PosLit(a))
	s.AddClause(NegLit(a))
	if n := s.EnumerateModels([]Var{a}, 0, nil); n != 0 {
		t.Fatalf("unsat formula enumerated %d models", n)
	}
}
