package sat

import (
	"math/rand"
	"testing"
)

// BenchmarkBinaryChainPropagation measures pure binary-clause propagation:
// w wide chains of length n of implications a→b, plus a long clause over
// three chain tails so the formula is not trivially satisfied by unit
// propagation alone. Asserting each chain head under assumptions floods
// the queue with binary implications and nothing else, so the number is
// dominated by the watcher mechanics the binWatches fast path replaces —
// the search trajectory is fixed (no conflicts), making before/after runs
// directly comparable. Clauses are added in shuffled order so their heap
// objects are scattered the way a real formula's are: the fast path never
// dereferences the clause during propagation, the generic path must.
func BenchmarkBinaryChainPropagation(b *testing.B) {
	const width, length = 64, 200
	s := New()
	chains := make([][]Var, width)
	heads := make([]Lit, 0, width)
	type edge struct{ w, i int }
	var edges []edge
	for w := range chains {
		chains[w] = make([]Var, length)
		for i := range chains[w] {
			chains[w][i] = s.NewVar()
		}
		heads = append(heads, PosLit(chains[w][0]))
		for i := 0; i+1 < length; i++ {
			edges = append(edges, edge{w, i})
		}
	}
	rng := rand.New(rand.NewSource(42))
	rng.Shuffle(len(edges), func(a, b int) { edges[a], edges[b] = edges[b], edges[a] })
	for _, e := range edges {
		// chain[i] → chain[i+1]
		s.AddClause(NegLit(chains[e.w][e.i]), PosLit(chains[e.w][e.i+1]))
	}
	// One ternary clause over the chain tails keeps a decision in play.
	tails := make([]Lit, 0, 3)
	for w := 0; w < 3; w++ {
		tails = append(tails, NegLit(chains[w][length-1]))
	}
	s.AddClause(tails...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Assert all but the clause's chains: ~61*200 binary propagations
		// per call, zero conflicts, identical work every iteration.
		if st := s.Solve(heads[3:]...); st != Sat {
			b.Fatalf("got %v, want Sat", st)
		}
	}
	b.ReportMetric(float64(s.Stats.Propagations)/float64(b.N), "props/op")
}
