package sat

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestParseDIMACSSimple(t *testing.T) {
	in := `c simple instance
p cnf 3 3
1 2 0
-1 3 0
-2 -3 0
`
	s, n, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("declared %d vars", n)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
}

func TestParseDIMACSUnsat(t *testing.T) {
	in := "p cnf 1 2\n1 0\n-1 0\n"
	s, _, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v", st)
	}
}

func TestParseDIMACSMultilineClause(t *testing.T) {
	in := "p cnf 2 1\n1\n2 0\n"
	s, _, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	if s.Stats.NumClauses != 1 {
		t.Fatalf("clauses = %d", s.Stats.NumClauses)
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	for _, in := range []string{
		"p cnf x 3\n",
		"p dnf 2 2\n",
		"p cnf 2 1\n1 foo 0\n",
	} {
		if _, _, err := ParseDIMACS(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 30; iter++ {
		s1 := New()
		n := 3 + rng.Intn(6)
		vars := make([]Var, n)
		for i := range vars {
			vars[i] = s1.NewVar()
		}
		for i, m := 0, 2+rng.Intn(10); i < m; i++ {
			k := 1 + rng.Intn(3)
			c := make([]Lit, k)
			for j := range c {
				c[j] = MkLit(vars[rng.Intn(n)], rng.Intn(2) == 0)
			}
			s1.AddClause(c...)
		}
		var buf bytes.Buffer
		if err := s1.WriteDIMACS(&buf); err != nil {
			t.Fatal(err)
		}
		s2, _, err := ParseDIMACS(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if (s1.Solve() == Sat) != (s2.Solve() == Sat) {
			t.Fatalf("iter %d: satisfiability changed through round trip\n%s", iter, buf.String())
		}
	}
}

func TestParseOPB(t *testing.T) {
	in := `* a small PB instance
+2 x1 +3 x2 +1 x3 >= 4 ;
+1 x1 +1 x2 <= 1 ;
`
	s, obj, err := ParseOPB(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if obj != nil {
		t.Fatal("no objective expected")
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	// 2a+3b+c ≥ 4 with a+b ≤ 1: b=1,c=1 works; a=1,b=1 forbidden.
	a, b := s.Model(Var(1)), s.Model(Var(2))
	if a && b {
		t.Fatal("model violates ≤ constraint")
	}
}

func TestParseOPBEquality(t *testing.T) {
	in := "+1 x1 +1 x2 = 1 ;\n"
	s, _, err := ParseOPB(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	if s.Model(Var(1)) == s.Model(Var(2)) {
		t.Fatal("exactly-one violated")
	}
}

func TestParseOPBObjectiveAndNegatedLiterals(t *testing.T) {
	in := `min: +1 x1 +1 x2 ;
+1 x1 +1 ~x2 >= 1 ;
`
	s, obj, err := ParseOPB(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(obj) != 2 {
		t.Fatalf("objective has %d terms", len(obj))
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
}

func TestParseOPBErrors(t *testing.T) {
	for _, in := range []string{
		"+1 y1 >= 1 ;\n",
		"+1 x1 1 ;\n",
		"+x x1 >= 1 ;\n",
	} {
		if _, _, err := ParseOPB(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestOPBRoundTrip(t *testing.T) {
	s1 := New()
	a, b, c := s1.NewVar(), s1.NewVar(), s1.NewVar()
	s1.AddClause(PosLit(a), NegLit(b))
	s1.AddPB([]PBTerm{{2, PosLit(a)}, {3, PosLit(b)}, {1, NegLit(c)}}, 3)
	var buf bytes.Buffer
	if err := s1.WriteOPB(&buf); err != nil {
		t.Fatal(err)
	}
	s2, _, err := ParseOPB(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if (s1.Solve() == Sat) != (s2.Solve() == Sat) {
		t.Fatal("satisfiability changed through OPB round trip")
	}
}

func TestWriteDIMACSRejectsPB(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddPB([]PBTerm{{2, PosLit(a)}, {1, PosLit(b)}}, 2)
	var buf bytes.Buffer
	if err := s.WriteDIMACS(&buf); err == nil {
		t.Fatal("PB formula must not serialize as CNF")
	}
}
