package sat

import (
	"bytes"
	"testing"
)

// The parser fuzz targets harden the two ingestion surfaces (DIMACS CNF
// and OPB) against hostile input: no panic, no unbounded allocation, and
// every accepted formula must be solvable under a small conflict budget
// without crashing. `make fuzz` runs them for a short smoke window; longer
// campaigns use go test -fuzz directly.

func FuzzParseDIMACS(f *testing.F) {
	f.Add([]byte("p cnf 3 2\n1 -2 0\n2 3 0\n"))
	f.Add([]byte("c a comment\np cnf 1 2\n1 0\n-1 0\n"))
	f.Add([]byte("p cnf 0 0\n"))
	f.Add([]byte("p cnf 4294967296 1\n1 0\n"))
	f.Add([]byte("p cnf 2 1\n-9223372036854775808 0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, n, err := ParseDIMACS(bytes.NewReader(data))
		if err != nil {
			return
		}
		if s == nil || n < 0 || n > maxParseVars {
			t.Fatalf("accepted formula with s=%v n=%d", s, n)
		}
		// Accepted formulas must also survive a (bounded) solve.
		if n <= 64 {
			s.MaxConflicts = 50
			switch s.Solve() {
			case Sat, Unsat, Unknown:
			default:
				t.Fatal("solver returned an unknown status")
			}
		}
	})
}

func FuzzParseOPB(f *testing.F) {
	f.Add([]byte("* a comment\nmin: 1 x1 2 x2;\n1 x1 1 x2 >= 1;\n"))
	f.Add([]byte("1 x1 1 ~x2 <= 1;\n"))
	f.Add([]byte("2 x1 -3 x2 = 0;\n"))
	f.Add([]byte("min: 9223372036854775807 x1;\n1 x1 >= 1;\n"))
	f.Add([]byte("1 x4194305 >= 1;\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, obj, err := ParseOPB(bytes.NewReader(data))
		if err != nil {
			return
		}
		if s == nil {
			t.Fatal("accepted OPB without a solver")
		}
		for _, term := range obj {
			if v := term.Lit.Var(); int(v) < 1 || int(v) > s.NumVariables() {
				t.Fatalf("objective references out-of-range var %d (solver has %d)", v, s.NumVariables())
			}
		}
		if s.NumVariables() <= 64 {
			s.MaxConflicts = 50
			s.Solve()
		}
	})
}
