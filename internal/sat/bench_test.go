package sat

import (
	"math/rand"
	"testing"
)

// addPigeonhole loads PHP(n+1, n) — UNSAT, learning-heavy.
func addPigeonhole(s *Solver, n int) {
	x := make([][]Var, n+1)
	for p := range x {
		x[p] = make([]Var, n)
		for h := range x[p] {
			x[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ {
		lits := make([]Lit, n)
		for h := 0; h < n; h++ {
			lits[h] = PosLit(x[p][h])
		}
		s.AddClause(lits...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(NegLit(x[p1][h]), NegLit(x[p2][h]))
			}
		}
	}
}

func BenchmarkPigeonhole7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		addPigeonhole(s, 7)
		if s.Solve() != Unsat {
			b.Fatal("PHP must be unsat")
		}
		b.ReportMetric(float64(s.Stats.Conflicts), "conflicts")
	}
}

// BenchmarkRandom3SAT solves satisfiable-ish random 3-SAT at ratio 4.0
// (below the phase transition).
func BenchmarkRandom3SAT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		s := New()
		const n = 150
		vars := make([]Var, n)
		for j := range vars {
			vars[j] = s.NewVar()
		}
		for c := 0; c < 4*n; c++ {
			var lits [3]Lit
			for k := range lits {
				lits[k] = MkLit(vars[rng.Intn(n)], rng.Intn(2) == 0)
			}
			s.AddClause(lits[:]...)
		}
		s.Solve()
		b.ReportMetric(float64(s.Stats.Conflicts), "conflicts")
	}
}

// BenchmarkPBKnapsack solves a PB feasibility version of a knapsack: pick
// items with Σw ≤ cap and Σv ≥ target.
func BenchmarkPBKnapsack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(7))
		s := New()
		const n = 60
		var wTerms, vTerms []PBTerm
		var wSum, vSum int64
		for j := 0; j < n; j++ {
			v := s.NewVar()
			w := int64(1 + rng.Intn(20))
			val := int64(1 + rng.Intn(20))
			wTerms = append(wTerms, PBTerm{Coef: -w, Lit: PosLit(v)})
			vTerms = append(vTerms, PBTerm{Coef: val, Lit: PosLit(v)})
			wSum += w
			vSum += val
		}
		s.AddPB(wTerms, -wSum/2) // Σw ≤ wSum/2
		s.AddPB(vTerms, vSum*2/3)
		s.Solve()
		b.ReportMetric(float64(s.Stats.Conflicts), "conflicts")
	}
}

// BenchmarkIncrementalAssumptions measures assumption-based re-solving
// (the workhorse of the binary search).
func BenchmarkIncrementalAssumptions(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	s := New()
	const n = 120
	vars := make([]Var, n)
	for j := range vars {
		vars[j] = s.NewVar()
	}
	for c := 0; c < 4*n; c++ {
		var lits [3]Lit
		for k := range lits {
			lits[k] = MkLit(vars[rng.Intn(n)], rng.Intn(2) == 0)
		}
		s.AddClause(lits[:]...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := MkLit(vars[i%n], i%2 == 0)
		s.Solve(a)
	}
}
