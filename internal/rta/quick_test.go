package rta

import (
	"testing"
	"testing/quick"

	"satalloc/internal/model"
)

// buildFromSeed deterministically builds a small single-ECU system from
// quick-generated raw bytes.
func buildFromSeed(wcets [4]uint8, periods [4]uint8) (*model.System, *model.Allocation) {
	s := &model.System{ECUs: []*model.ECU{{ID: 0}}}
	a := model.NewAllocation()
	for i := 0; i < 4; i++ {
		period := int64(periods[i]%40) + 10
		c := int64(wcets[i]%5) + 1
		s.Tasks = append(s.Tasks, &model.Task{
			ID: i, Period: period, Deadline: period,
			WCET: map[int]int64{0: c},
		})
		a.TaskECU[i] = 0
		a.TaskPrio[i] = i
	}
	return s, a
}

// Property: increasing any task's WCET never decreases any response time
// (monotonicity of the fixed point).
func TestResponseMonotoneInWCETQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400}
	err := quick.Check(func(wcets, periods [4]uint8, bump uint8) bool {
		s, a := buildFromSeed(wcets, periods)
		before := make([]int64, 4)
		for i := range s.Tasks {
			before[i] = TaskResponseTime(s, a, i)
		}
		victim := int(bump) % 4
		s.Tasks[victim].WCET[0]++
		for i := range s.Tasks {
			after := TaskResponseTime(s, a, i)
			if before[i] == Infeasible {
				continue // was already infeasible; stays so or undefined
			}
			if after != Infeasible && after < before[i] {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

// Property: the highest-priority task's response is exactly its WCET plus
// blocking, regardless of the rest of the system.
func TestTopPriorityExactQuick(t *testing.T) {
	err := quick.Check(func(wcets, periods [4]uint8, blocking uint8) bool {
		s, a := buildFromSeed(wcets, periods)
		b := int64(blocking % 4)
		s.Tasks[0].Blocking = b
		r := TaskResponseTime(s, a, 0)
		want := s.Tasks[0].WCET[0] + b
		if want > s.Tasks[0].Deadline {
			return r == Infeasible
		}
		return r == want
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: removing a higher-priority task never increases anyone's
// response time.
func TestResponseMonotoneInTaskSetQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	err := quick.Check(func(wcets, periods [4]uint8, drop uint8) bool {
		s, a := buildFromSeed(wcets, periods)
		before := make(map[int]int64)
		for _, task := range s.Tasks {
			before[task.ID] = TaskResponseTime(s, a, task.ID)
		}
		victim := int(drop) % 3 // drop one of the three highest
		var kept []*model.Task
		for i, task := range s.Tasks {
			if i != victim {
				kept = append(kept, task)
			}
		}
		s.Tasks = kept
		for _, task := range s.Tasks {
			after := TaskResponseTime(s, a, task.ID)
			b := before[task.ID]
			if b == Infeasible {
				continue
			}
			if after == Infeasible || after > b {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

// Property: bus utilization is additive over messages and unaffected by
// priorities.
func TestBusUtilizationAdditiveQuick(t *testing.T) {
	err := quick.Check(func(sizes [3]uint8, periods [3]uint8) bool {
		s := &model.System{
			ECUs: []*model.ECU{{ID: 0}, {ID: 1}},
			Media: []*model.Medium{{
				ID: 0, Kind: model.CAN, ECUs: []int{0, 1}, TimePerUnit: 2, FrameOverhead: 1,
			}},
		}
		a := model.NewAllocation()
		var want int64
		for i := 0; i < 3; i++ {
			period := int64(periods[i]%50) + 20
			size := int64(sizes[i]%6) + 1
			s.Tasks = append(s.Tasks, &model.Task{
				ID: i, Period: period, Deadline: period,
				WCET: map[int]int64{0: 1}, Messages: []int{i},
			})
			s.Tasks = append(s.Tasks, &model.Task{
				ID: 100 + i, Period: period, Deadline: period, WCET: map[int]int64{1: 1},
			})
			s.Messages = append(s.Messages, &model.Message{
				ID: i, From: i, To: 100 + i, Size: size, Deadline: period,
			})
			a.TaskECU[i] = 0
			a.TaskECU[100+i] = 1
			a.Route[i] = model.Path{0}
			a.MsgLocalDeadline[[2]int{i, 0}] = period
			want += 1000 * s.Media[0].Rho(size) / period
		}
		a.AssignDeadlineMonotonic(s)
		return BusUtilizationMilli(s, a, 0) == want
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}
