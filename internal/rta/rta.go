// Package rta implements the schedulability analyses of §2 of Metzner et
// al. (IPDPS 2006): worst-case response times of tasks under preemptive
// fixed-priority scheduling (the classic recurrence, eq. 1), of messages on
// priority-arbitrated buses such as CAN (eq. 2), and of messages on
// TDMA-arbitrated buses such as the token ring, with the extra
// blocking term for waiting out foreign slots (eq. 3). For hierarchical
// routes it applies the per-medium local deadlines and the inherited jitter
// of §4.
//
// The analyzer is deliberately the mirror image of the SAT encoding in
// package encode: any allocation the optimizer emits must pass Analyze,
// which the integration tests enforce.
package rta

import (
	"fmt"
	"sort"

	"satalloc/internal/model"
)

// Infeasible is returned as a response time when the fixed-point iteration
// exceeds the deadline (the iteration is then cut off, per the paper).
const Infeasible = int64(-1)

// Result collects the outcome of a full-system analysis.
type Result struct {
	// TaskResponse maps task ID → worst-case response time, or Infeasible.
	TaskResponse map[int]int64
	// MsgResponse maps [message ID, medium ID] → worst-case response time
	// of the message on that medium (for used media only).
	MsgResponse map[[2]int]int64
	// MsgEndToEnd maps message ID → the guaranteed end-to-end bound
	// (Σ local deadlines + gateway service costs), or Infeasible.
	MsgEndToEnd map[int]int64
	// Violations lists human-readable reasons for unschedulability.
	Violations []string
	// Schedulable is true when every task and message meets its deadline.
	Schedulable bool
}

func (r *Result) addViolation(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	r.Schedulable = false
}

// TaskResponseTime solves eq. (1), extended with the release jitter and
// blocking factors the paper's §2 mentions: the smallest fixed point of
//
//	w = B_i + c_i(p) + Σ_{j ∈ hp(i)} ⌈(w + J_j)/t_j⌉ · c_j(p)
//
// over the tasks co-located with task i that have higher priority. The
// returned value is w, the worst-case delay from the (possibly jittered)
// activation; the deadline test is w + J_i ≤ d_i, which Analyze applies.
// It returns Infeasible if the iteration exceeds d_i − J_i.
func TaskResponseTime(s *model.System, a *model.Allocation, taskID int) int64 {
	task := s.TaskByID(taskID)
	p := a.TaskECU[taskID]
	c := task.WCET[p] + task.Blocking
	cap := task.Deadline - task.Jitter
	type hpEntry struct{ period, wcet, jitter int64 }
	var hp []hpEntry
	for _, other := range s.Tasks {
		if other.ID == taskID || a.TaskECU[other.ID] != p {
			continue
		}
		if a.TaskPrio[other.ID] < a.TaskPrio[taskID] {
			hp = append(hp, hpEntry{other.Period, other.WCET[p], other.Jitter})
		}
	}
	r := c
	for {
		next := c
		for _, h := range hp {
			next += ceilDiv(r+h.jitter, h.period) * h.wcet
		}
		if next > cap {
			return Infeasible
		}
		if next == r {
			return r
		}
		r = next
	}
}

func ceilDiv(a, b int64) int64 {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// MediumLoad describes one message crossing a medium, with its per-medium
// parameters resolved under an allocation. It is shared by the analyzer and
// the discrete-event simulator.
type MediumLoad struct {
	Msg           *model.Message
	SenderECU     int   // ECU the message is sent from on this medium
	Period        int64 // inherited from the sending task
	Rho           int64 // transmission time on this medium
	Jitter        int64 // inherited per §4 along the route
	Prio          int
	LocalDeadline int64 // local deadline d^k_m on this medium
}

// MediumLoads gathers every message whose route crosses medium m, sorted by
// descending priority (ascending rank).
func MediumLoads(s *model.System, a *model.Allocation, m *model.Medium) []MediumLoad {
	var out []MediumLoad
	for _, msg := range s.Messages {
		route := a.Route[msg.ID]
		pos := -1
		for i, k := range route {
			if k == m.ID {
				pos = i
				break
			}
		}
		if pos < 0 {
			continue
		}
		sender := s.TaskByID(msg.From)
		// The "sending ECU" on medium k_i of the route is the original
		// sender for i = 0, else the gateway between k_{i-1} and k_i.
		sp := a.TaskECU[msg.From]
		if pos > 0 {
			sp = s.GatewayBetween(route[pos-1], route[pos])
		}
		out = append(out, MediumLoad{
			Msg:           msg,
			SenderECU:     sp,
			Period:        sender.Period,
			Rho:           m.Rho(msg.Size),
			Jitter:        HopJitter(s, a, msg.ID, pos),
			Prio:          a.MsgPrio[msg.ID],
			LocalDeadline: a.MsgLocalDeadline[[2]int{msg.ID, m.ID}],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prio < out[j].Prio })
	return out
}

// HopJitter implements the jitter formula of §4 for hop number pos
// (0-based) of the message's route:
//
//	J^k_m = J_m + Σ_{j<pos} ( d^{k_j}_m − β^{k_j}(m) )
//
// where J_m is the release jitter inherited from the sending task, d are
// the local deadlines, and β is the best-case transmission time on the
// earlier medium (the raw ρ, with no queueing).
func HopJitter(s *model.System, a *model.Allocation, msgID, pos int) int64 {
	msg := s.MessageByID(msgID)
	j := s.TaskByID(msg.From).Jitter
	route := a.Route[msgID]
	for i := 0; i < pos; i++ {
		med := s.MediumByID(route[i])
		d := a.MsgLocalDeadline[[2]int{msgID, route[i]}]
		j += d - med.Rho(msg.Size)
	}
	return j
}

// MessageResponseTime computes the worst-case response time of message
// msgID on medium medID under the allocation, following eq. (2) for
// priority buses and eq. (3) for TDMA buses. deadlineCap bounds the
// iteration. Interference is jitter-aware per §4/[2]:
//
//	I = Σ_{m_j ∈ hp(m)} ⌈(r + J_j)/t_j⌉ · ρ_j
//
// On a priority bus hp(m) is every higher-priority message on the medium;
// on a TDMA bus only messages queued at the same sending ECU compete (other
// stations own different slots), and the blocking term
// ⌈r/Λ⌉·(Λ − λ(S(Π(τ_i)))) accounts for waiting out foreign slots.
func MessageResponseTime(s *model.System, a *model.Allocation, msgID, medID int, deadlineCap int64) int64 {
	m := s.MediumByID(medID)
	loads := MediumLoads(s, a, m)
	var self *MediumLoad
	var hp []MediumLoad
	for i := range loads {
		if loads[i].Msg.ID == msgID {
			self = &loads[i]
			break
		}
	}
	if self == nil {
		return Infeasible
	}
	for i := range loads {
		if loads[i].Msg.ID == msgID {
			continue
		}
		if loads[i].Prio >= self.Prio {
			continue
		}
		if m.Kind == model.TokenRing && loads[i].SenderECU != self.SenderECU {
			continue // foreign stations interfere via the blocking term
		}
		hp = append(hp, loads[i])
	}

	var lambda, roundLen int64
	if m.Kind == model.TokenRing {
		roundLen = a.RoundLength(m)
		lambda = a.SlotLen[[2]int{m.ID, self.SenderECU}]
		if lambda <= 0 || roundLen <= 0 {
			return Infeasible
		}
		if self.Rho > lambda {
			return Infeasible // the frame does not fit the sender's slot
		}
	}

	r := self.Rho
	for {
		next := self.Rho
		for _, h := range hp {
			next += ceilDiv(r+h.Jitter, h.Period) * h.Rho
		}
		if m.Kind == model.TokenRing {
			next += ceilDiv(r, roundLen) * (roundLen - lambda)
		}
		if next > deadlineCap {
			return Infeasible
		}
		if next == r {
			return r
		}
		r = next
	}
}

// Analyze checks the whole system under the allocation: every task and,
// per used medium, every message hop, plus the end-to-end deadline
// decomposition Σ_k d^k_m + serv_m ≤ Δ_m of §4.
func Analyze(s *model.System, a *model.Allocation) *Result {
	res := &Result{
		TaskResponse: map[int]int64{},
		MsgResponse:  map[[2]int]int64{},
		MsgEndToEnd:  map[int]int64{},
		Schedulable:  true,
	}
	if err := a.CheckStructure(s); err != nil {
		res.addViolation("structure: %v", err)
		return res
	}
	for _, t := range s.Tasks {
		r := TaskResponseTime(s, a, t.ID)
		res.TaskResponse[t.ID] = r
		if r == Infeasible {
			res.addViolation("task %s misses its deadline on ECU %d", t.Name, a.TaskECU[t.ID])
		}
	}
	// Memory capacities.
	for _, e := range s.ECUs {
		if e.MemCapacity <= 0 {
			continue
		}
		var used int64
		for _, t := range s.Tasks {
			if a.TaskECU[t.ID] == e.ID {
				used += t.MemSize
			}
		}
		if used > e.MemCapacity {
			res.addViolation("ECU %s memory overcommitted: %d > %d", e.Name, used, e.MemCapacity)
		}
	}
	for _, msg := range s.Messages {
		route := a.Route[msg.ID]
		if len(route) == 0 {
			res.MsgEndToEnd[msg.ID] = 0 // delivered locally
			continue
		}
		var sumLocal int64
		ok := true
		for _, k := range route {
			d := a.MsgLocalDeadline[[2]int{msg.ID, k}]
			if d <= 0 {
				res.addViolation("message %s has no local deadline on medium %d", msg.Name, k)
				ok = false
				continue
			}
			r := MessageResponseTime(s, a, msg.ID, k, d)
			res.MsgResponse[[2]int{msg.ID, k}] = r
			if r == Infeasible {
				res.addViolation("message %s misses local deadline %d on medium %d", msg.Name, d, k)
				ok = false
			}
			sumLocal += d
		}
		serv := s.PathServiceCost(route)
		e2e := sumLocal + serv
		res.MsgEndToEnd[msg.ID] = e2e
		if ok && e2e > msg.Deadline {
			res.addViolation("message %s end-to-end bound %d exceeds Δ=%d", msg.Name, e2e, msg.Deadline)
		}
	}
	// A token-ring slot must fit every frame its station transmits; this is
	// re-checked here so infeasible slot sizings surface even for messages
	// whose response-time iteration was never reached.
	for _, m := range s.Media {
		if m.Kind != model.TokenRing {
			continue
		}
		for _, l := range MediumLoads(s, a, m) {
			if lam := a.SlotLen[[2]int{m.ID, l.SenderECU}]; l.Rho > lam {
				res.addViolation("slot of ECU %d on medium %s (%d) cannot fit frame of %s (ρ=%d)",
					l.SenderECU, m.Name, lam, l.Msg.Name, l.Rho)
			}
		}
	}
	return res
}

// ECUUtilizationMilli returns the CPU utilization of ECU p under the
// allocation, in thousandths (‰).
func ECUUtilizationMilli(s *model.System, a *model.Allocation, p int) int64 {
	var u int64
	for _, t := range s.Tasks {
		if a.TaskECU[t.ID] == p {
			u += 1000 * t.WCET[p] / t.Period
		}
	}
	return u
}

// BusUtilizationMilli returns the utilization of a medium in thousandths:
// Σ ρ_m / t_m over the messages routed across it — the U_CAN objective of
// Table 1.
func BusUtilizationMilli(s *model.System, a *model.Allocation, medID int) int64 {
	m := s.MediumByID(medID)
	var u int64
	for _, l := range MediumLoads(s, a, m) {
		u += 1000 * l.Rho / l.Period
	}
	return u
}

// SumTokenRotation returns Σ_media TRT over all token-ring media — the
// objective of Table 4.
func SumTokenRotation(s *model.System, a *model.Allocation) int64 {
	var sum int64
	for _, m := range s.Media {
		if m.Kind == model.TokenRing {
			sum += a.RoundLength(m)
		}
	}
	return sum
}
