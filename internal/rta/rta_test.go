package rta

import (
	"testing"

	"satalloc/internal/model"
)

// singleECU builds a one-ECU system with the given (wcet, period) pairs,
// deadlines equal to periods, priorities rate-monotonic by order.
func singleECU(params ...[2]int64) (*model.System, *model.Allocation) {
	s := &model.System{ECUs: []*model.ECU{{ID: 0, Name: "p0"}}}
	a := model.NewAllocation()
	for i, pr := range params {
		s.Tasks = append(s.Tasks, &model.Task{
			ID: i, Name: "t" + string(rune('0'+i)),
			Period: pr[1], Deadline: pr[1],
			WCET: map[int]int64{0: pr[0]},
		})
		a.TaskECU[i] = 0
		a.TaskPrio[i] = i
	}
	return s, a
}

func TestClassicResponseTimes(t *testing.T) {
	// The textbook example: C=(3,3,5), T=(7,12,20) → R=(3,6,20).
	s, a := singleECU([2]int64{3, 7}, [2]int64{3, 12}, [2]int64{5, 20})
	want := []int64{3, 6, 20}
	for i, w := range want {
		if got := TaskResponseTime(s, a, i); got != w {
			t.Errorf("R%d = %d, want %d", i, got, w)
		}
	}
}

func TestOverloadInfeasible(t *testing.T) {
	// Utilization > 1 on one ECU: the lowest-priority task must fail.
	s, a := singleECU([2]int64{5, 10}, [2]int64{5, 10}, [2]int64{2, 10})
	if got := TaskResponseTime(s, a, 2); got != Infeasible {
		t.Fatalf("R2 = %d, want Infeasible", got)
	}
}

func TestHighestPriorityIsWCET(t *testing.T) {
	s, a := singleECU([2]int64{4, 50}, [2]int64{9, 60})
	if got := TaskResponseTime(s, a, 0); got != 4 {
		t.Fatalf("R0 = %d, want its WCET", got)
	}
	if got := TaskResponseTime(s, a, 1); got != 13 {
		t.Fatalf("R1 = %d, want 13", got)
	}
}

func TestTasksOnDifferentECUsDoNotInterfere(t *testing.T) {
	s, a := singleECU([2]int64{5, 10}, [2]int64{5, 10})
	s.ECUs = append(s.ECUs, &model.ECU{ID: 1, Name: "p1"})
	s.Tasks[1].WCET[1] = 5
	a.TaskECU[1] = 1
	if got := TaskResponseTime(s, a, 1); got != 5 {
		t.Fatalf("R1 = %d, want 5 (alone on its ECU)", got)
	}
}

// busSystem builds two ECUs joined by one medium, two tasks exchanging
// messages, used by the message-analysis tests.
func busSystem(kind model.MediumKind) (*model.System, *model.Allocation) {
	s := &model.System{
		ECUs: []*model.ECU{{ID: 0, Name: "p0"}, {ID: 1, Name: "p1"}},
		Media: []*model.Medium{{
			ID: 0, Name: "bus", Kind: kind, ECUs: []int{0, 1},
			TimePerUnit: 1, SlotQuantum: 1, MaxSlots: 50,
		}},
	}
	s.Tasks = []*model.Task{
		{ID: 0, Name: "snd0", Period: 100, Deadline: 100, WCET: map[int]int64{0: 1, 1: 1}, Messages: []int{0}},
		{ID: 1, Name: "snd1", Period: 50, Deadline: 50, WCET: map[int]int64{0: 1, 1: 1}, Messages: []int{1}},
		{ID: 2, Name: "rcv", Period: 100, Deadline: 100, WCET: map[int]int64{0: 1, 1: 1}},
	}
	s.Messages = []*model.Message{
		{ID: 0, Name: "m0", From: 0, To: 2, Size: 4, Deadline: 60},
		{ID: 1, Name: "m1", From: 1, To: 2, Size: 2, Deadline: 30},
	}
	a := model.NewAllocation()
	a.TaskECU[0] = 0
	a.TaskECU[1] = 0
	a.TaskECU[2] = 1
	a.AssignDeadlineMonotonic(s)
	a.Route[0] = model.Path{0}
	a.Route[1] = model.Path{0}
	a.MsgLocalDeadline[[2]int{0, 0}] = 60
	a.MsgLocalDeadline[[2]int{1, 0}] = 30
	return s, a
}

func TestPriorityBusMessageRTA(t *testing.T) {
	s, a := busSystem(model.CAN)
	// m1 (deadline 30) outranks m0. ρ0=4, ρ1=2.
	// r(m1) = 2 (highest priority). r(m0) = 4 + ⌈r/50⌉·2 → 6.
	if r := MessageResponseTime(s, a, 1, 0, 30); r != 2 {
		t.Errorf("r(m1) = %d, want 2", r)
	}
	if r := MessageResponseTime(s, a, 0, 0, 60); r != 6 {
		t.Errorf("r(m0) = %d, want 6", r)
	}
}

func TestTokenRingMessageRTA(t *testing.T) {
	s, a := busSystem(model.TokenRing)
	// Slots: ECU0 gets 5, ECU1 gets 3 → Λ = 8.
	a.SlotLen[[2]int{0, 0}] = 5
	a.SlotLen[[2]int{0, 1}] = 3
	// m1: ρ=2, blocking ⌈r/8⌉·(8-5): r0=2 → 2+3=5 → 2+3=5. r=5.
	if r := MessageResponseTime(s, a, 1, 0, 30); r != 5 {
		t.Errorf("r(m1) = %d, want 5", r)
	}
	// m0: ρ=4, interference from m1 (same station, higher prio):
	// r = 4 + ⌈r/50⌉·2 + ⌈r/8⌉·3 → r0=4: 4+2+3=9 → 4+2+6=12 → 12 → r=12.
	if r := MessageResponseTime(s, a, 0, 0, 60); r != 12 {
		t.Errorf("r(m0) = %d, want 12", r)
	}
}

func TestTokenRingFrameMustFitSlot(t *testing.T) {
	s, a := busSystem(model.TokenRing)
	a.SlotLen[[2]int{0, 0}] = 3 // ρ(m0)=4 > 3
	a.SlotLen[[2]int{0, 1}] = 3
	if r := MessageResponseTime(s, a, 0, 0, 60); r != Infeasible {
		t.Fatalf("r = %d, want Infeasible for oversized frame", r)
	}
}

func TestTokenRingNeedsSlot(t *testing.T) {
	s, a := busSystem(model.TokenRing)
	a.SlotLen[[2]int{0, 1}] = 3 // sender ECU 0 has no slot
	if r := MessageResponseTime(s, a, 0, 0, 60); r != Infeasible {
		t.Fatalf("r = %d, want Infeasible without sender slot", r)
	}
}

func TestAnalyzeEndToEnd(t *testing.T) {
	s, a := busSystem(model.CAN)
	res := Analyze(s, a)
	if !res.Schedulable {
		t.Fatalf("expected schedulable, violations: %v", res.Violations)
	}
	if res.MsgEndToEnd[0] != 60 || res.MsgEndToEnd[1] != 30 {
		t.Fatalf("end-to-end bounds %v", res.MsgEndToEnd)
	}
}

func TestAnalyzeFlagsMissingLocalDeadline(t *testing.T) {
	s, a := busSystem(model.CAN)
	delete(a.MsgLocalDeadline, [2]int{0, 0})
	res := Analyze(s, a)
	if res.Schedulable {
		t.Fatal("missing local deadline must be flagged")
	}
}

func TestAnalyzeFlagsE2EOverrun(t *testing.T) {
	s, a := busSystem(model.CAN)
	a.MsgLocalDeadline[[2]int{0, 0}] = 70 // > Δ=60
	res := Analyze(s, a)
	if res.Schedulable {
		t.Fatal("local deadline sum beyond Δ must be flagged")
	}
}

func TestGatewayServiceCostCounted(t *testing.T) {
	// Three ECUs, two media joined at a gateway with service cost.
	s := &model.System{
		ECUs: []*model.ECU{
			{ID: 0, Name: "p0"}, {ID: 1, Name: "gw", ServiceCost: 7}, {ID: 2, Name: "p2"},
		},
		Media: []*model.Medium{
			{ID: 0, Name: "k0", Kind: model.CAN, ECUs: []int{0, 1}, TimePerUnit: 1},
			{ID: 1, Name: "k1", Kind: model.CAN, ECUs: []int{1, 2}, TimePerUnit: 1},
		},
	}
	s.Tasks = []*model.Task{
		{ID: 0, Name: "snd", Period: 100, Deadline: 100, WCET: map[int]int64{0: 1}, Messages: []int{0}},
		{ID: 1, Name: "rcv", Period: 100, Deadline: 100, WCET: map[int]int64{2: 1}},
	}
	s.Messages = []*model.Message{{ID: 0, Name: "m", From: 0, To: 1, Size: 3, Deadline: 40}}
	a := model.NewAllocation()
	a.TaskECU[0] = 0
	a.TaskECU[1] = 2
	a.AssignDeadlineMonotonic(s)
	a.Route[0] = model.Path{0, 1}
	a.MsgLocalDeadline[[2]int{0, 0}] = 15
	a.MsgLocalDeadline[[2]int{0, 1}] = 15
	res := Analyze(s, a)
	if !res.Schedulable {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.MsgEndToEnd[0] != 37 { // 15 + 15 + 7
		t.Fatalf("end-to-end = %d, want 37", res.MsgEndToEnd[0])
	}
	// Shrinking Δ below 37 must fail.
	s.Messages[0].Deadline = 36
	if Analyze(s, a).Schedulable {
		t.Fatal("Δ=36 must be infeasible")
	}
}

func TestHopJitterPropagation(t *testing.T) {
	s := &model.System{
		ECUs: []*model.ECU{{ID: 0}, {ID: 1}, {ID: 2}},
		Media: []*model.Medium{
			{ID: 0, Name: "k0", Kind: model.CAN, ECUs: []int{0, 1}, TimePerUnit: 2},
			{ID: 1, Name: "k1", Kind: model.CAN, ECUs: []int{1, 2}, TimePerUnit: 2},
		},
	}
	s.Tasks = []*model.Task{
		{ID: 0, Period: 100, Deadline: 100, WCET: map[int]int64{0: 1}, Messages: []int{0}, Jitter: 3},
		{ID: 1, Period: 100, Deadline: 100, WCET: map[int]int64{2: 1}},
	}
	s.Messages = []*model.Message{{ID: 0, From: 0, To: 1, Size: 5, Deadline: 80}}
	a := model.NewAllocation()
	a.TaskECU[0] = 0
	a.TaskECU[1] = 2
	a.Route[0] = model.Path{0, 1}
	a.MsgLocalDeadline[[2]int{0, 0}] = 25
	a.MsgLocalDeadline[[2]int{0, 1}] = 25
	// ρ = 5·2 = 10 on both media; β = ρ.
	if j := HopJitter(s, a, 0, 0); j != 3 {
		t.Fatalf("hop-0 jitter = %d, want release jitter 3", j)
	}
	if j := HopJitter(s, a, 0, 1); j != 3+(25-10) {
		t.Fatalf("hop-1 jitter = %d, want 18", j)
	}
}

func TestUtilizations(t *testing.T) {
	s, a := busSystem(model.CAN)
	// ECU0 hosts tasks 0 and 1: 1/100 + 1/50 = 30‰.
	if u := ECUUtilizationMilli(s, a, 0); u != 30 {
		t.Fatalf("ECU util = %d‰, want 30", u)
	}
	// Bus: ρ0/t0 + ρ1/t1 = 4/100 + 2/50 = 80‰.
	if u := BusUtilizationMilli(s, a, 0); u != 80 {
		t.Fatalf("bus util = %d‰, want 80", u)
	}
}

func TestSumTokenRotation(t *testing.T) {
	s, a := busSystem(model.TokenRing)
	a.SlotLen[[2]int{0, 0}] = 5
	a.SlotLen[[2]int{0, 1}] = 3
	if got := SumTokenRotation(s, a); got != 8 {
		t.Fatalf("ΣTRT = %d, want 8", got)
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 5, 0}, {-3, 5, 0}, {1, 5, 1}, {5, 5, 1}, {6, 5, 2}, {10, 3, 4},
	}
	for _, c := range cases {
		if got := ceilDiv(c.a, c.b); got != c.want {
			t.Errorf("ceilDiv(%d,%d)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}
