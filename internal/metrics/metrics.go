// Package metrics is a stdlib-only, low-overhead metrics registry for the
// solve pipeline: atomic counters, gauges, and bounded histograms with
// Prometheus text-format and JSON exposition. It is the pull-based
// counterpart to the push-based span tracing of internal/obs — a scraper
// can watch a long solve live instead of reading a trace after exit.
//
// Like obs, everything is nil-safe: a nil *Registry hands out nil
// collectors, and every method on a nil collector is a no-op, so
// instrumented code needs no "if metrics enabled" guards and pays one nil
// check when metrics are off.
//
// All collectors are safe for concurrent use (atomic operations on the
// hot paths; the registry lock is only taken at registration and
// exposition time).
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels attaches constant key/value pairs to one series of a metric
// family. Two series of the same family are distinguished by their label
// sets.
type Labels map[string]string

// Kind is the exposition type of a metric family.
type Kind int

// Metric kinds, matching the Prometheus exposition TYPE names.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing value. For sources that already
// maintain a cumulative count (the SAT solver's Stats), mirror them with
// delta Adds rather than Set so that fresh solvers (which restart their
// cumulative counters at zero) never make the exported value go backwards.
//
//satlint:nilsafe
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down, e.g. the current learnt-DB
// size or the binary search's bounds. The zero value reads as 0; use Set
// with a sentinel (conventionally -1) for "not yet known".
//
//satlint:nilsafe
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by n (n may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into a fixed set of buckets with
// inclusive upper bounds (ascending), plus an implicit +Inf bucket. The
// bucket layout is fixed at registration, so Observe is a binary search
// over a small slice plus two atomic adds — cheap enough for per-conflict
// observations like LBD.
//
//satlint:nilsafe
type Histogram struct {
	bounds []int64        // ascending upper bounds; +Inf implicit
	counts []atomic.Int64 // len(bounds)+1, non-cumulative per bucket
	sum    atomic.Int64
	count  atomic.Int64
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Smallest bucket with bound >= v; len(bounds) is the +Inf bucket.
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Counts are per-bucket (non-cumulative) and aligned with Bounds; the
// final element of Counts is the +Inf bucket.
type HistogramSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Sum    int64   `json:"sum"`
	Count  int64   `json:"count"`
}

// Snapshot copies the histogram's current state. The per-bucket counts
// are read without a global lock, so under concurrent Observes the
// snapshot is approximate (each bucket individually consistent).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    h.sum.Load(),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// series is one registered (family, labels) pair.
type series struct {
	labels Labels
	key    string // canonical label serialization, sort/identity key
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups all series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	bounds []int64 // histograms only
	series map[string]*series
}

// Registry holds metric families and renders them. A nil *Registry is a
// valid disabled registry: it hands out nil collectors and renders
// nothing.
//
//satlint:nilsafe
type Registry struct {
	//satlint:lock metrics.registry
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order of family names
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: map[string]*family{}}
}

// lookup finds or creates the (family, labels) series. It panics on a
// kind or bucket-layout conflict — re-registering an existing name with a
// different shape is a programming error, not a runtime condition.
func (r *Registry) lookup(name, help string, kind Kind, bounds []int64, labels Labels) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, series: map[string]*series{}}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s re-registered as %s (was %s)", name, kind, f.kind))
	}
	key := labelKey(labels)
	s := f.series[key]
	if s == nil {
		s = &series{labels: labels, key: key}
		switch kind {
		case KindCounter:
			s.c = &Counter{}
		case KindGauge:
			s.g = &Gauge{}
		case KindHistogram:
			s.h = &Histogram{bounds: f.bounds, counts: make([]atomic.Int64, len(f.bounds)+1)}
		}
		f.series[key] = s
	}
	return s
}

// Counter returns the counter series for name+labels, creating it on
// first use. labels may be nil. On a nil registry it returns nil (a valid
// no-op counter).
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindCounter, nil, labels).c
}

// Gauge returns the gauge series for name+labels, creating it on first
// use. On a nil registry it returns nil.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindGauge, nil, labels).g
}

// Histogram returns the histogram series for name+labels, creating it on
// first use with the given ascending bucket upper bounds (a +Inf bucket
// is implicit). Later calls for the same family ignore bounds and reuse
// the registered layout. On a nil registry it returns nil.
func (r *Registry) Histogram(name, help string, bounds []int64, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: %s histogram bounds not ascending: %v", name, bounds))
		}
	}
	return r.lookup(name, help, KindHistogram, bounds, labels).h
}

// labelKey canonicalizes a label set: sorted, escaped, Prometheus-style
// `{k="v",...}`; empty labels yield "".
func labelKey(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// labelKeyWith appends one extra pair (the histogram "le") to an existing
// canonical key.
func labelKeyWith(key, k, v string) string {
	extra := fmt.Sprintf("%s=%q", k, v)
	if key == "" {
		return "{" + extra + "}"
	}
	return key[:len(key)-1] + "," + extra + "}"
}

// snapshotFamilies copies the family/series structure under the lock so
// rendering can proceed without holding it.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.families[name])
	}
	return out
}

// sortedSeries returns a family's series in canonical label order.
func (f *family) sortedSeries() []*series {
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers per family, one line per
// series, histograms as cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.sortedSeries() {
			var err error
			switch f.kind {
			case KindCounter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, s.key, s.c.Value())
			case KindGauge:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, s.key, s.g.Value())
			case KindHistogram:
				err = writePrometheusHistogram(w, f.name, s)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writePrometheusHistogram(w io.Writer, name string, s *series) error {
	snap := s.h.Snapshot()
	cum := int64(0)
	for i, c := range snap.Counts {
		cum += c
		le := "+Inf"
		if i < len(snap.Bounds) {
			le = strconv.FormatInt(snap.Bounds[i], 10)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelKeyWith(s.key, "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", name, s.key, snap.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, s.key, snap.Count)
	return err
}

// WriteJSON renders the registry as one JSON object in the spirit of
// expvar: series name (with canonical labels) → value, histograms as
// {bounds, counts, sum, count} objects. Keys are sorted, output is
// indented — meant for humans and ad-hoc tooling, with /metrics as the
// machine interface.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	out := map[string]any{}
	for _, f := range r.snapshotFamilies() {
		for _, s := range f.sortedSeries() {
			key := f.name + s.key
			switch f.kind {
			case KindCounter:
				out[key] = s.c.Value()
			case KindGauge:
				out[key] = s.g.Value()
			case KindHistogram:
				out[key] = s.h.Snapshot()
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
