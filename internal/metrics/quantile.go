package metrics

import (
	"math"
	"sort"
	"sync"
)

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observations in
// the snapshot by linear interpolation within the bucket that contains
// the target rank — the same estimator Prometheus' histogram_quantile
// applies server-side, implemented here once so /progress and the load
// generator report the same p99 for the same data.
//
// Rules:
//   - An empty histogram (Count == 0) returns NaN — "no data" must not
//     masquerade as a zero latency.
//   - q is clamped to [0, 1]; q = 0 is the lower edge of the first
//     occupied bucket, q = 1 its last occupied bucket's upper bound.
//   - Within a bucket [lo, hi] the estimate interpolates linearly between
//     the bucket edges by the rank's position among the bucket's
//     observations. The first bucket's lower edge is 0 when its bound is
//     positive (observations are non-negative magnitudes throughout this
//     registry), else the bound itself.
//   - A rank landing in the +Inf overflow bucket returns the largest
//     finite bound — the histogram cannot resolve beyond its layout, and
//     a finite underestimate labeled as such beats a fabricated +Inf. A
//     histogram with observations but no finite buckets returns NaN.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count <= 0 || len(s.Counts) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Target rank among 1..Count, conventionally ceil(q·n) with a floor of
	// 1 so q=0 selects the first observation.
	rank := math.Ceil(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Counts {
		if c <= 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(s.Bounds) {
				// +Inf bucket: report the largest finite bound.
				if len(s.Bounds) == 0 {
					return math.NaN()
				}
				return float64(s.Bounds[len(s.Bounds)-1])
			}
			hi := float64(s.Bounds[i])
			lo := 0.0
			if i > 0 {
				lo = float64(s.Bounds[i-1])
			} else if hi < 0 {
				lo = hi
			}
			// Position of the rank within this bucket's observations.
			frac := (rank - float64(cum)) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	// Unreachable when Count matches the bucket sums; degrade gracefully
	// for approximate snapshots taken under concurrent Observes.
	if len(s.Bounds) == 0 {
		return math.NaN()
	}
	return float64(s.Bounds[len(s.Bounds)-1])
}

// Mean returns the arithmetic mean of the snapshot's observations (NaN
// when empty). Exact, since the histogram tracks the raw sum.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count <= 0 {
		return math.NaN()
	}
	return float64(s.Sum) / float64(s.Count)
}

// LabelCap bounds the cardinality of one label dimension: values are
// admitted first-come-first-served up to the cap, and everything after
// collapses to the overflow value, so a misbehaving client cannot mint
// unbounded metric series (each series is live forever in the registry).
// Reserved values — conventionally the "-" unknown marker and the
// overflow value itself — always pass and never consume cap slots.
// Safe for concurrent use; the zero value is unusable, construct with
// NewLabelCap.
type LabelCap struct {
	//satlint:lock metrics.labelcap
	mu       sync.Mutex
	max      int
	overflow string
	reserved map[string]bool
	seen     map[string]bool
}

// NewLabelCap admits up to max distinct values (max <= 0 admits only the
// reserved values), collapsing the rest to overflow. The overflow value
// is implicitly reserved.
func NewLabelCap(max int, overflow string, reserved ...string) *LabelCap {
	c := &LabelCap{
		max:      max,
		overflow: overflow,
		reserved: map[string]bool{overflow: true},
		seen:     map[string]bool{},
	}
	for _, v := range reserved {
		c.reserved[v] = true
	}
	return c
}

// Normalize returns v when it is reserved or within the cardinality
// budget, the overflow value otherwise. A value admitted once stays
// admitted (its series already exists), so Normalize is stable per value
// for the registry's lifetime.
func (c *LabelCap) Normalize(v string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.reserved[v] || c.seen[v] {
		return v
	}
	if len(c.seen) >= c.max {
		return c.overflow
	}
	c.seen[v] = true
	return v
}

// Values returns the admitted values plus the reserved ones, sorted — the
// live label universe, for tests and summaries.
func (c *LabelCap) Values() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.seen)+len(c.reserved))
	for v := range c.seen {
		out = append(out, v)
	}
	for v := range c.reserved {
		if !c.seen[v] {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}
