package metrics

import (
	"math"
	"sync"
	"testing"
)

// snap builds a snapshot directly — the quantile estimator is pure over
// the snapshot shape, so tests need no registry.
func snap(bounds []int64, counts []int64) HistogramSnapshot {
	var sum, n int64
	for _, c := range counts {
		n += c
	}
	return HistogramSnapshot{Bounds: bounds, Counts: counts, Sum: sum, Count: n}
}

func TestHistogramSnapshotQuantile(t *testing.T) {
	ms := []int64{10, 100, 1000} // bucket edges: (0,10] (10,100] (100,1000] (1000,+Inf]
	cases := []struct {
		name string
		s    HistogramSnapshot
		q    float64
		want float64
	}{
		// 100 observations uniformly in the second bucket: p50 lands at
		// rank 50 of 100 → lo + (hi-lo)·(50/100) = 10 + 90·0.5 = 55.
		{"mid-bucket interpolation", snap(ms, []int64{0, 100, 0, 0}), 0.5, 55},
		// Rank 99 of those 100 → 10 + 90·0.99 = 99.1.
		{"p99 same bucket", snap(ms, []int64{0, 100, 0, 0}), 0.99, 99.1},
		// First bucket interpolates from lower edge 0: rank 5 of 10 → 5.
		{"first bucket from zero", snap(ms, []int64{10, 0, 0, 0}), 0.5, 5},
		// Across buckets: 50 in (0,10], 50 in (100,1000]. p25 → rank 25,
		// the 25th of the 50 in the first bucket → 10·(25/50) = 5.
		{"quarter in first bucket", snap(ms, []int64{50, 0, 50, 0}), 0.25, 5},
		// p75 → rank 75, the 25th of the 50 in (100,1000] → 100+900·0.5 = 550.
		{"p75 skips empty bucket", snap(ms, []int64{50, 0, 50, 0}), 0.75, 550},
		// q=0 floors the rank at 1: the 1st of 50 in (0,10] → 10/50 = 0.2.
		{"q0 first observation", snap(ms, []int64{50, 0, 50, 0}), 0, 0.2},
		// q=1 is the last observation's bucket upper bound.
		{"q1 last bucket top", snap(ms, []int64{50, 0, 50, 0}), 1, 1000},
		// Out-of-range q clamps.
		{"q clamps high", snap(ms, []int64{50, 0, 50, 0}), 3, 1000},
		{"q clamps low", snap(ms, []int64{50, 0, 50, 0}), -1, 0.2},
		// Rank in the +Inf overflow bucket: the largest finite bound, not
		// an invented value.
		{"overflow bucket caps at last bound", snap(ms, []int64{0, 0, 0, 10}), 0.5, 1000},
		{"overflow only tail", snap(ms, []int64{90, 0, 0, 10}), 0.99, 1000},
	}
	for _, c := range cases {
		got := c.s.Quantile(c.q)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: Quantile(%v) = %v, want %v", c.name, c.q, got, c.want)
		}
	}
}

func TestQuantileEmptyAndDegenerate(t *testing.T) {
	if got := (HistogramSnapshot{}).Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty snapshot Quantile = %v, want NaN", got)
	}
	empty := snap([]int64{10, 100}, []int64{0, 0, 0})
	if got := empty.Quantile(0.99); !math.IsNaN(got) {
		t.Fatalf("zero-count snapshot Quantile = %v, want NaN", got)
	}
	// Observations but no finite buckets (everything in +Inf): NaN, the
	// layout carries no magnitude information at all.
	infOnly := snap(nil, []int64{7})
	if got := infOnly.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("inf-only snapshot Quantile = %v, want NaN", got)
	}
	if got := (HistogramSnapshot{}).Mean(); !math.IsNaN(got) {
		t.Fatalf("empty Mean = %v, want NaN", got)
	}
	m := HistogramSnapshot{Sum: 30, Count: 4}
	if got := m.Mean(); got != 7.5 {
		t.Fatalf("Mean = %v, want 7.5", got)
	}
}

// TestQuantileOnLiveHistogram closes the loop through Observe/Snapshot:
// the registry path and the estimator agree on a known distribution.
func TestQuantileOnLiveHistogram(t *testing.T) {
	r := New()
	h := r.Histogram("satalloc_test_latency_ms", "test", []int64{1, 2, 4, 8, 16}, nil)
	for v := int64(1); v <= 16; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	// 16 observations; p50 → rank 8: bucket (4,8] holds values 5..8
	// (ranks 5..8), so the 4th of its 4 → the bucket's upper edge, 8.
	if got := s.Quantile(0.5); math.Abs(got-8) > 1e-9 {
		t.Fatalf("live p50 = %v, want 8", got)
	}
	if got := s.Quantile(1); got != 16 {
		t.Fatalf("live p100 = %v, want 16", got)
	}
}

func TestLabelCapAdmitsThenCollapses(t *testing.T) {
	c := NewLabelCap(2, "other", "-")
	if got := c.Normalize("-"); got != "-" {
		t.Fatalf("reserved value rewritten to %q", got)
	}
	if got := c.Normalize("a"); got != "a" {
		t.Fatalf("first value = %q", got)
	}
	if got := c.Normalize("b"); got != "b" {
		t.Fatalf("second value = %q", got)
	}
	if got := c.Normalize("c"); got != "other" {
		t.Fatalf("over-cap value = %q, want other", got)
	}
	// Stability: admitted values stay admitted, overflow stays overflow.
	if c.Normalize("a") != "a" || c.Normalize("c") != "other" {
		t.Fatal("Normalize is not stable per value")
	}
	// The overflow value itself always passes and takes no slot.
	if c.Normalize("other") != "other" {
		t.Fatal("overflow value must pass through")
	}
	want := []string{"-", "a", "b", "other"}
	got := c.Values()
	if len(got) != len(want) {
		t.Fatalf("Values() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values() = %v, want %v", got, want)
		}
	}
}

func TestLabelCapConcurrent(t *testing.T) {
	c := NewLabelCap(4, "other")
	var wg sync.WaitGroup
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				v := c.Normalize(names[(i+j)%len(names)])
				if v == "" {
					t.Error("empty normalized value")
					return
				}
			}
		}(i)
	}
	wg.Wait()
	vals := c.Values()
	// 4 admitted + "other" reserved.
	if len(vals) != 5 {
		t.Fatalf("admitted %v, want 4 values plus other", vals)
	}
}
