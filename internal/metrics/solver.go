package metrics

import (
	"strconv"
	"time"
)

// Default bucket layouts for the solver histograms. LBD and backjump
// depth are small-integer distributions with long tails; per-SOLVE-call
// wall time spans microseconds (trivial windows late in the binary
// search) to minutes (the initial unconstrained solve).
var (
	LBDBuckets      = []int64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128}
	BackjumpBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	// SolveCallMSBuckets are milliseconds.
	SolveCallMSBuckets = []int64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000, 300000}
)

// SolverMetrics bundles the standard metric set of the solve pipeline,
// one series per concern, all registered under the satalloc_ prefix. A
// nil *SolverMetrics is a valid disabled instrument: every Record method
// is a no-op and every hook constructor returns nil, so the layers below
// (sat, opt, core) pay one nil check when metrics are off — the same
// contract as obs.Tracer.
//
//satlint:nilsafe
type SolverMetrics struct {
	reg *Registry

	// SAT search counters, mirrored from the solver's cumulative Stats at
	// progress boundaries (restart/reduce/solve entry).
	Conflicts    *Counter
	Decisions    *Counter
	Propagations *Counter
	Restarts     *Counter
	LearntAdded  *Counter
	LearntPruned *Counter
	// Point-in-time search state.
	LearntDB   *Gauge
	TrailDepth *Gauge
	// Per-conflict learning quality.
	LBD      *Histogram
	Backjump *Histogram

	// Binary-search optimizer (opt.Minimize).
	SolveCalls    *Counter
	SolveCallMS   *Histogram
	BoundLower    *Gauge // L: proven lower bound (-1 until known)
	BoundUpper    *Gauge // R: best incumbent cost (-1 until known)
	BoundGap      *Gauge // R-L (-1 until both known)
	IncumbentCost *Gauge // current best model cost, any source (-1 until known)
	BudgetHits    *Counter

	// Propositional encoding (bv bit-blast with structural hashing).
	EncodeGatesRequested *Counter // gate requests made to the hash-consing layer
	EncodeGatesEmitted   *Counter // gates that allocated a fresh variable and clauses
	EncodeGatesFolded    *Counter // gates resolved by constant folding or operand identities
	EncodeGatesReused    *Counter // gates answered from the structural-hashing cache
	EncodeVars           *Gauge   // solver variables after the last bit-blast
	EncodeLiterals       *Gauge   // clause literals after the last bit-blast

	// core.Solve phases and portfolio arms.
	SolvesStarted *Counter
	Panics        *Counter
	ArmIncumbents *Counter
	ArmFailures   *Counter

	// Clause-sharing CDCL portfolio (sat.ParallelSolver).
	ParallelWorkers *Gauge   // configured portfolio size (0: sequential)
	SharedExported  *Counter // learnt clauses published to the exchange pool
	SharedImported  *Counter // shared clauses successfully integrated by other workers
	SharedFiltered  *Counter // shared clauses dropped (LBD/length bound, overflow, satisfied)
	WorkerDeaths    *Counter // portfolio workers lost to contained panics

	// Proof checking (internal/proof) and unsat-core explanation.
	ProofChecks    *Counter // proof-log replays completed by the checker
	ProofSteps     *Counter // proof steps replayed (inputs, learns, deletes, probes)
	ProofProbes    *Counter // assumption-refutation probes certified
	ProofCheckMS   *Gauge   // wall time of the last proof check in milliseconds
	ExplainSolves  *Counter // SAT probes spent extracting and minimizing cores
	ExplainSize    *Gauge   // constraint families in the last reported core
	ExplainMinimal *Gauge   // 1 when the last core was proven minimal, else 0
	ExplainMS      *Gauge   // wall time of the last core explanation in milliseconds
}

// NewSolverMetrics registers the standard solver metric set on r. A nil
// registry yields a nil (disabled) *SolverMetrics.
func NewSolverMetrics(r *Registry) *SolverMetrics {
	if r == nil {
		return nil
	}
	m := &SolverMetrics{
		reg:          r,
		Conflicts:    r.Counter("satalloc_sat_conflicts_total", "CDCL conflicts across all SOLVE calls", nil),
		Decisions:    r.Counter("satalloc_sat_decisions_total", "CDCL decisions across all SOLVE calls", nil),
		Propagations: r.Counter("satalloc_sat_propagations_total", "unit propagations across all SOLVE calls", nil),
		Restarts:     r.Counter("satalloc_sat_restarts_total", "solver restarts", nil),
		LearntAdded:  r.Counter("satalloc_sat_learnt_added_total", "learnt clauses recorded", nil),
		LearntPruned: r.Counter("satalloc_sat_learnt_pruned_total", "learnt clauses removed by DB reduction", nil),
		LearntDB:     r.Gauge("satalloc_sat_learnt_db_size", "current learnt-clause database size", nil),
		TrailDepth:   r.Gauge("satalloc_sat_trail_depth", "assigned literals at the last progress boundary", nil),
		LBD:          r.Histogram("satalloc_sat_lbd", "literal block distance of learnt clauses", LBDBuckets, nil),
		Backjump:     r.Histogram("satalloc_sat_backjump_levels", "decision levels undone per conflict", BackjumpBuckets, nil),

		SolveCalls:    r.Counter("satalloc_opt_solve_calls_total", "SOLVE invocations of the binary search", nil),
		SolveCallMS:   r.Histogram("satalloc_opt_solve_call_duration_ms", "wall time per SOLVE call in milliseconds", SolveCallMSBuckets, nil),
		BoundLower:    r.Gauge("satalloc_opt_bound_lower", "binary search proven lower bound L (-1: unknown)", nil),
		BoundUpper:    r.Gauge("satalloc_opt_bound_upper", "binary search incumbent cost R (-1: unknown)", nil),
		BoundGap:      r.Gauge("satalloc_opt_bound_gap", "binary search gap R-L (-1: unknown)", nil),
		IncumbentCost: r.Gauge("satalloc_opt_incumbent_cost", "cost of the best model found so far (-1: none)", nil),
		BudgetHits:    r.Counter("satalloc_opt_budget_hits_total", "SOLVE calls interrupted by a budget or cancellation", nil),

		EncodeGatesRequested: r.Counter("satalloc_encode_gates_requested_total", "gate requests made to the bit-blaster's hash-consing layer", nil),
		EncodeGatesEmitted:   r.Counter("satalloc_encode_gates_emitted_total", "gates emitted as fresh variables and clauses", nil),
		EncodeGatesFolded:    r.Counter("satalloc_encode_gates_folded_total", "gates resolved by constant folding or operand identities", nil),
		EncodeGatesReused:    r.Counter("satalloc_encode_gates_reused_total", "gates answered from the structural-hashing cache", nil),
		EncodeVars:           r.Gauge("satalloc_encode_vars", "solver variables after the last bit-blast", nil),
		EncodeLiterals:       r.Gauge("satalloc_encode_literals", "clause literals after the last bit-blast", nil),

		SolvesStarted: r.Counter("satalloc_core_solves_started_total", "core.Solve pipeline runs started", nil),
		Panics:        r.Counter("satalloc_core_panics_total", "panics contained at the core.Solve boundary", nil),
		ArmIncumbents: r.Counter("satalloc_portfolio_incumbents_total", "heuristic-arm incumbents delivered", nil),
		ArmFailures:   r.Counter("satalloc_portfolio_arm_failures_total", "portfolio arms lost to contained panics", nil),

		ParallelWorkers: r.Gauge("satalloc_parallel_workers", "CDCL portfolio size (0: sequential)", nil),
		SharedExported:  r.Counter("satalloc_parallel_shared_exported_total", "learnt clauses published to the exchange pool", nil),
		SharedImported:  r.Counter("satalloc_parallel_shared_imported_total", "shared clauses integrated by other workers", nil),
		SharedFiltered:  r.Counter("satalloc_parallel_shared_filtered_total", "shared clauses dropped by LBD/length bound, overflow, or root subsumption", nil),
		WorkerDeaths:    r.Counter("satalloc_parallel_worker_deaths_total", "portfolio workers lost to contained panics", nil),

		ProofChecks:    r.Counter("satalloc_proof_checks_total", "proof-log replays completed by the internal checker", nil),
		ProofSteps:     r.Counter("satalloc_proof_steps_total", "proof steps replayed by the checker", nil),
		ProofProbes:    r.Counter("satalloc_proof_probes_total", "assumption-refutation probes certified", nil),
		ProofCheckMS:   r.Gauge("satalloc_proof_check_ms", "wall time of the last proof check in milliseconds", nil),
		ExplainSolves:  r.Counter("satalloc_core_explain_solves_total", "SAT probes spent on unsat-core extraction and minimization", nil),
		ExplainSize:    r.Gauge("satalloc_core_explain_size", "constraint families in the last reported core", nil),
		ExplainMinimal: r.Gauge("satalloc_core_explain_minimal", "1 when the last core was proven minimal, else 0", nil),
		ExplainMS:      r.Gauge("satalloc_core_explain_ms", "wall time of the last core explanation in milliseconds", nil),
	}
	m.BoundLower.Set(-1)
	m.BoundUpper.Set(-1)
	m.BoundGap.Set(-1)
	m.IncumbentCost.Set(-1)
	return m
}

// Registry returns the registry the metrics are registered on (nil on a
// disabled instrument).
func (m *SolverMetrics) Registry() *Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// SearchHook returns a stateful hook mirroring one solver's cumulative
// search counters into the registry as deltas. One hook must be created
// per solver instance: a fresh solver restarts its cumulative counters at
// zero, and per-hook state is what keeps the mirrored totals monotone
// across solver rebuilds (opt's fresh mode). Returns nil when m is nil.
func (m *SolverMetrics) SearchHook() func(conflicts, decisions, propagations, restarts, learntAdded, learntPruned int64, learnts, trail int) {
	if m == nil {
		return nil
	}
	var last struct{ conf, dec, prop, rest, ladd, lpru int64 }
	return func(conflicts, decisions, propagations, restarts, learntAdded, learntPruned int64, learnts, trail int) {
		m.Conflicts.Add(conflicts - last.conf)
		m.Decisions.Add(decisions - last.dec)
		m.Propagations.Add(propagations - last.prop)
		m.Restarts.Add(restarts - last.rest)
		m.LearntAdded.Add(learntAdded - last.ladd)
		m.LearntPruned.Add(learntPruned - last.lpru)
		last.conf, last.dec, last.prop = conflicts, decisions, propagations
		last.rest, last.ladd, last.lpru = restarts, learntAdded, learntPruned
		m.LearntDB.Set(int64(learnts))
		m.TrailDepth.Set(int64(trail))
	}
}

// EncodeHook returns a stateful hook mirroring one bit-blaster's
// cumulative gate counters into the registry as deltas. Like SearchHook,
// one hook must be created per blaster instance: a fresh blast restarts
// its counters at zero, and per-hook state keeps the mirrored totals
// monotone across encoder rebuilds (opt's fresh mode). The counters keep
// growing after the initial blast as the optimizer builds cost-probe
// circuits, so callers re-fire the hook at solve boundaries. Returns nil
// when m is nil.
func (m *SolverMetrics) EncodeHook() func(requested, emitted, folded, reused int64, vars int, literals int64) {
	if m == nil {
		return nil
	}
	var last struct{ req, emit, fold, reuse int64 }
	return func(requested, emitted, folded, reused int64, vars int, literals int64) {
		m.EncodeGatesRequested.Add(requested - last.req)
		m.EncodeGatesEmitted.Add(emitted - last.emit)
		m.EncodeGatesFolded.Add(folded - last.fold)
		m.EncodeGatesReused.Add(reused - last.reuse)
		last.req, last.emit, last.fold, last.reuse = requested, emitted, folded, reused
		m.EncodeVars.Set(int64(vars))
		m.EncodeLiterals.Set(literals)
	}
}

// ConflictHook returns the per-conflict observation hook for
// sat.Solver.OnConflict: LBD and backjump-depth histograms. Stateless, so
// one hook may be shared across solvers. Returns nil when m is nil.
func (m *SolverMetrics) ConflictHook() func(lbd, backjump, learntLen int) {
	if m == nil {
		return nil
	}
	return func(lbd, backjump, learntLen int) {
		m.LBD.Observe(int64(lbd))
		m.Backjump.Observe(int64(backjump))
	}
}

// RecordIter records one SOLVE call of the binary search.
func (m *SolverMetrics) RecordIter(d time.Duration, interrupted bool) {
	if m == nil {
		return
	}
	m.SolveCalls.Inc()
	m.SolveCallMS.Observe(d.Milliseconds())
	if interrupted {
		m.BudgetHits.Inc()
	}
}

// RecordBounds publishes the binary search's current proven window [L,R].
func (m *SolverMetrics) RecordBounds(l, r int64) {
	if m == nil {
		return
	}
	m.BoundLower.Set(l)
	m.BoundUpper.Set(r)
	m.BoundGap.Set(r - l)
}

// RecordIncumbent publishes the cost of the best model found so far.
func (m *SolverMetrics) RecordIncumbent(cost int64) {
	if m == nil {
		return
	}
	m.IncumbentCost.Set(cost)
}

// RecordSolveStart counts a core.Solve pipeline run.
func (m *SolverMetrics) RecordSolveStart() {
	if m == nil {
		return
	}
	m.SolvesStarted.Inc()
}

// RecordSolveEnd counts a completed pipeline run, labelled by its status
// string ("optimal", "feasible", "infeasible", "aborted", "error").
func (m *SolverMetrics) RecordSolveEnd(status string) {
	if m == nil {
		return
	}
	m.reg.Counter("satalloc_core_solves_completed_total",
		"core.Solve pipeline runs completed, by outcome", Labels{"status": status}).Inc()
}

// RecordPanic counts a panic contained at the core.Solve boundary.
func (m *SolverMetrics) RecordPanic() {
	if m == nil {
		return
	}
	m.Panics.Inc()
}

// RecordArmIncumbent counts a heuristic-arm incumbent and publishes its
// cost.
func (m *SolverMetrics) RecordArmIncumbent(cost int64) {
	if m == nil {
		return
	}
	m.ArmIncumbents.Inc()
	// The portfolio's heuristic incumbent and the exact arm's R both feed
	// the same "best model so far" gauge; whichever reported last wins,
	// matching the live view a scraper wants.
	m.IncumbentCost.Set(cost)
}

// RecordArmFailure counts a portfolio arm lost to a contained panic.
func (m *SolverMetrics) RecordArmFailure() {
	if m == nil {
		return
	}
	m.ArmFailures.Inc()
}

// RecordParallelWorkers publishes the configured CDCL-portfolio size.
func (m *SolverMetrics) RecordParallelWorkers(n int) {
	if m == nil {
		return
	}
	m.ParallelWorkers.Set(int64(n))
}

// RecordShared adds one race's clause-exchange deltas: clauses published,
// integrated by an importer, and dropped along the way.
func (m *SolverMetrics) RecordShared(exported, imported, filtered int64) {
	if m == nil {
		return
	}
	m.SharedExported.Add(exported)
	m.SharedImported.Add(imported)
	m.SharedFiltered.Add(filtered)
}

// RecordWorkerConflicts adds one portfolio worker's conflict delta for a
// race, labelled by worker index.
func (m *SolverMetrics) RecordWorkerConflicts(worker int, conflicts int64) {
	if m == nil {
		return
	}
	m.reg.Counter("satalloc_parallel_worker_conflicts_total",
		"CDCL conflicts per portfolio worker", Labels{"worker": strconv.Itoa(worker)}).Add(conflicts)
}

// RecordWorkerWin counts a race won by the given portfolio worker.
func (m *SolverMetrics) RecordWorkerWin(worker int) {
	if m == nil {
		return
	}
	m.reg.Counter("satalloc_parallel_worker_wins_total",
		"races decided per portfolio worker", Labels{"worker": strconv.Itoa(worker)}).Inc()
}

// RecordProofCheck records one completed proof-certification pass: the
// steps replayed, the assumption probes certified, and the wall time.
func (m *SolverMetrics) RecordProofCheck(steps, probes int, d time.Duration) {
	if m == nil {
		return
	}
	m.ProofChecks.Inc()
	m.ProofSteps.Add(int64(steps))
	m.ProofProbes.Add(int64(probes))
	m.ProofCheckMS.Set(d.Milliseconds())
}

// RecordCoreExplain records one completed unsat-core explanation.
func (m *SolverMetrics) RecordCoreExplain(size, solves int, d time.Duration, minimal bool) {
	if m == nil {
		return
	}
	m.ExplainSolves.Add(int64(solves))
	m.ExplainSize.Set(int64(size))
	if minimal {
		m.ExplainMinimal.Set(1)
	} else {
		m.ExplainMinimal.Set(0)
	}
	m.ExplainMS.Set(d.Milliseconds())
}

// RecordWorkerDeath counts a portfolio worker lost to a contained panic.
func (m *SolverMetrics) RecordWorkerDeath() {
	if m == nil {
		return
	}
	m.WorkerDeaths.Inc()
}
