package metrics

import (
	"bytes"
	"encoding/json"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("test_total", "a counter", nil)
	c.Inc()
	c.Add(4)
	c.Add(-7) // counters never go down
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_gauge", "a gauge", nil)
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	// Same name+labels returns the same series.
	if r.Counter("test_total", "a counter", nil).Value() != 5 {
		t.Fatal("re-lookup did not return the existing series")
	}
	// Distinct labels are distinct series.
	r.Counter("labeled_total", "", Labels{"k": "a"}).Add(1)
	r.Counter("labeled_total", "", Labels{"k": "b"}).Add(2)
	if got := r.Counter("labeled_total", "", Labels{"k": "b"}).Value(); got != 2 {
		t.Fatalf("labeled series = %d, want 2", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("hist", "", []int64{1, 5, 10}, nil)
	for _, v := range []int64{0, 1, 2, 5, 6, 10, 11, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Buckets: ≤1: {0,1}=2, ≤5: {2,5}=2, ≤10: {6,10}=2, +Inf: {11,1000}=2.
	want := []int64{2, 2, 2, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (snapshot %+v)", i, s.Counts[i], w, s)
		}
	}
	if s.Count != 8 || s.Sum != 0+1+2+5+6+10+11+1000 {
		t.Fatalf("count/sum wrong: %+v", s)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "", nil)
	g := r.Gauge("x", "", nil)
	h := r.Histogram("x", "", []int64{1}, nil)
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil collectors must read as zero")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	var m *SolverMetrics
	if m.SearchHook() != nil || m.ConflictHook() != nil {
		t.Fatal("nil SolverMetrics must hand out nil hooks")
	}
	m.RecordIter(time.Second, true)
	m.RecordBounds(1, 2)
	m.RecordIncumbent(3)
	m.RecordSolveStart()
	m.RecordSolveEnd("optimal")
	m.RecordPanic()
	m.RecordArmIncumbent(4)
	m.RecordArmFailure()
}

// promLine matches a sample line of the text exposition format.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9]+$`)

// parsePrometheus asserts every line is a comment or a well-formed sample
// and returns the samples by full series name.
func parsePrometheus(t *testing.T, text string) map[string]int64 {
	t.Helper()
	out := map[string]int64{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseInt(line[i+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

func TestPrometheusExposition(t *testing.T) {
	r := New()
	r.Counter("app_requests_total", "requests served", Labels{"code": "200"}).Add(3)
	r.Counter("app_requests_total", "requests served", Labels{"code": "500"}).Add(1)
	r.Gauge("app_queue_depth", "queued items", nil).Set(-4)
	h := r.Histogram("app_latency_ms", "latency", []int64{10, 100}, nil)
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, header := range []string{
		"# TYPE app_requests_total counter",
		"# TYPE app_queue_depth gauge",
		"# TYPE app_latency_ms histogram",
		"# HELP app_requests_total requests served",
	} {
		if !strings.Contains(text, header) {
			t.Fatalf("missing %q in:\n%s", header, text)
		}
	}
	samples := parsePrometheus(t, text)
	want := map[string]int64{
		`app_requests_total{code="200"}`: 3,
		`app_requests_total{code="500"}`: 1,
		`app_queue_depth`:                -4,
		`app_latency_ms_bucket{le="10"}`: 1,
		// Histogram buckets are cumulative in the exposition.
		`app_latency_ms_bucket{le="100"}`:  2,
		`app_latency_ms_bucket{le="+Inf"}`: 3,
		`app_latency_ms_sum`:               5055,
		`app_latency_ms_count`:             3,
	}
	for k, v := range want {
		if samples[k] != v {
			t.Errorf("%s = %d, want %d", k, samples[k], v)
		}
	}
	// One TYPE header per family, even with multiple series.
	if n := strings.Count(text, "# TYPE app_requests_total counter"); n != 1 {
		t.Fatalf("family header appears %d times", n)
	}
}

func TestJSONExposition(t *testing.T) {
	r := New()
	r.Counter("c_total", "", nil).Add(7)
	r.Histogram("h", "", []int64{1}, nil).Observe(9)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("JSON exposition not parseable: %v\n%s", err, buf.String())
	}
	if string(out["c_total"]) != "7" {
		t.Fatalf("c_total = %s", out["c_total"])
	}
	var hs HistogramSnapshot
	if err := json.Unmarshal(out["h"], &hs); err != nil || hs.Count != 1 || hs.Sum != 9 {
		t.Fatalf("histogram JSON wrong: %+v err=%v", hs, err)
	}
}

func TestSearchHookDeltasAcrossFreshSolvers(t *testing.T) {
	r := New()
	m := NewSolverMetrics(r)
	// Solver 1 reports cumulative counters up to 100 conflicts.
	h1 := m.SearchHook()
	h1(40, 10, 1000, 1, 5, 0, 5, 3)
	h1(100, 30, 3000, 3, 20, 8, 12, 7)
	// A fresh solver restarts its cumulative counters at zero; a fresh
	// hook keeps the mirrored totals monotone.
	h2 := m.SearchHook()
	h2(50, 5, 500, 2, 10, 1, 9, 2)
	if got := m.Conflicts.Value(); got != 150 {
		t.Fatalf("conflicts = %d, want 150", got)
	}
	if got := m.Restarts.Value(); got != 5 {
		t.Fatalf("restarts = %d, want 5", got)
	}
	if got := m.LearntDB.Value(); got != 9 {
		t.Fatalf("learnt DB gauge = %d, want 9 (last report wins)", got)
	}
}

func TestSolverMetricsRecords(t *testing.T) {
	r := New()
	m := NewSolverMetrics(r)
	if m.BoundLower.Value() != -1 || m.IncumbentCost.Value() != -1 {
		t.Fatal("unknown bounds must read -1")
	}
	m.RecordBounds(3, 9)
	if m.BoundGap.Value() != 6 {
		t.Fatalf("gap = %d", m.BoundGap.Value())
	}
	m.RecordIncumbent(9)
	m.RecordIter(25*time.Millisecond, false)
	m.RecordIter(time.Millisecond, true)
	if m.SolveCalls.Value() != 2 || m.BudgetHits.Value() != 1 {
		t.Fatal("iteration counters wrong")
	}
	m.RecordSolveEnd("optimal")
	m.RecordSolveEnd("optimal")
	m.RecordSolveEnd("feasible")
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples := parsePrometheus(t, buf.String())
	if samples[`satalloc_core_solves_completed_total{status="optimal"}`] != 2 ||
		samples[`satalloc_core_solves_completed_total{status="feasible"}`] != 1 {
		t.Fatalf("status-labelled completions wrong:\n%s", buf.String())
	}
	conflictHook := m.ConflictHook()
	conflictHook(3, 2, 4)
	if m.LBD.Snapshot().Count != 1 || m.Backjump.Snapshot().Count != 1 {
		t.Fatal("conflict hook did not observe")
	}
}

// TestConcurrentUse exercises every collector from many goroutines; run
// under -race this proves the atomic paths.
func TestConcurrentUse(t *testing.T) {
	r := New()
	m := NewSolverMetrics(r)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			hook := m.SearchHook()
			conflict := m.ConflictHook()
			for j := 0; j < 1000; j++ {
				hook(int64(j), int64(j), int64(j), int64(j/10), int64(j/5), int64(j/7), j%20, j%50)
				conflict(j%30, j%10, j%8)
				m.RecordBounds(int64(j), int64(j+10))
				m.RecordIncumbent(int64(j))
				r.Counter("dyn_total", "", Labels{"g": strconv.Itoa(i % 2)}).Inc()
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Errorf("exposition during writes: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := r.Counter("dyn_total", "", Labels{"g": "0"}).Value() +
		r.Counter("dyn_total", "", Labels{"g": "1"}).Value(); got != 8000 {
		t.Fatalf("dynamic counters lost increments: %d", got)
	}
	if m.LBD.Snapshot().Count != 8000 {
		t.Fatalf("LBD observations lost: %d", m.LBD.Snapshot().Count)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := New()
	r.Counter("clash", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("clash", "", nil)
}
