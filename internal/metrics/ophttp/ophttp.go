// Package ophttp is the allocator's ops HTTP listener: a small stdlib
// server exposing the live state of a running solve for scraping and
// debugging. Routes:
//
//	/metrics          Prometheus text exposition of the metrics registry
//	/debug/vars       the same registry as JSON (expvar-style)
//	/healthz          liveness: "ok\n", 200
//	/progress         JSON snapshot of the search (incumbent, bounds L/R,
//	                  conflict counters and the conflict rate between
//	                  scrapes, proof-check and core-explanation counters)
//	/explain          JSON of the last published infeasibility explanation
//	                  (minimized unsat core); {"status":"none"} until one
//	                  is published via Server.PublishExplain
//	/debug/flightrec  the flight recorder's event ring as JSON
//	/debug/pprof/*    the standard runtime profiling endpoints
//
// The long-running commands (allocate, solvesat, benchtab) start one via
// -ops-addr; see internal/cli. Handlers only read atomics and snapshot
// under short locks, so scraping mid-solve does not perturb the search.
package ophttp

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"satalloc/internal/flightrec"
	"satalloc/internal/metrics"
)

// Options configures a Server. All fields are optional: endpoints whose
// source is absent serve empty-but-valid payloads, so a partially wired
// caller still gets a scrapeable server.
type Options struct {
	// Registry backs /metrics and /debug/vars.
	Registry *metrics.Registry
	// Solver backs /progress.
	Solver *metrics.SolverMetrics
	// Recorder backs /debug/flightrec.
	Recorder *flightrec.Recorder
	// Component names the process in /progress (e.g. "allocate").
	Component string
}

// Progress is the JSON payload of /progress: the live view of the search
// a human (or a dashboard) polls to diagnose a stall.
type Progress struct {
	Component string `json:"component,omitempty"`
	UptimeMS  int64  `json:"uptime_ms"`
	// Binary-search state: incumbent cost and the proven window [L,R]
	// with its gap; -1 means not yet known.
	IncumbentCost int64 `json:"incumbent_cost"`
	BoundLower    int64 `json:"bound_lower"`
	BoundUpper    int64 `json:"bound_upper"`
	BoundGap      int64 `json:"bound_gap"`
	// Cumulative search counters.
	Conflicts    int64 `json:"conflicts"`
	Decisions    int64 `json:"decisions"`
	Propagations int64 `json:"propagations"`
	Restarts     int64 `json:"restarts"`
	SolveCalls   int64 `json:"solve_calls"`
	BudgetHits   int64 `json:"budget_hits"`
	LearntDB     int64 `json:"learnt_db_size"`
	// ConflictsPerSec is the conflict rate since the previous /progress
	// scrape (0 on the first scrape).
	ConflictsPerSec float64 `json:"conflicts_per_sec"`
	// Proof-checking and core-explanation counters (0 when those modes
	// are off).
	ProofChecks       int64 `json:"proof_checks"`
	ProofSteps        int64 `json:"proof_steps"`
	ProofProbes       int64 `json:"proof_probes"`
	CoreExplainSolves int64 `json:"core_explain_solves"`
	CoreExplainSize   int64 `json:"core_explain_size"`
}

// Server is a running ops listener. Create with Start, stop with Close.
type Server struct {
	ln    net.Listener
	srv   *http.Server
	start time.Time

	// Rate state between /progress scrapes, and the last explanation
	// published for /explain (nil until PublishExplain runs).
	mu            sync.Mutex
	lastScrape    time.Time
	lastConflicts int64
	explain       any

	// Err receives the Serve loop's terminal error (nil on clean Close);
	// buffered so the goroutine never blocks.
	err chan error
}

// Start listens on addr (host:port; ":0" picks a free port) and serves
// the ops routes in a background goroutine.
func Start(addr string, o Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ophttp: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, start: time.Now(), err: make(chan error, 1)}

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		o.Registry.WriteJSON(w)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.progress(o))
	})
	mux.HandleFunc("/explain", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		s.mu.Lock()
		v := s.explain
		s.mu.Unlock()
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if v == nil {
			enc.Encode(map[string]string{"status": "none"})
			return
		}
		enc.Encode(v)
	})
	mux.HandleFunc("/debug/flightrec", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		o.Recorder.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.srv = &http.Server{Handler: mux}
	go func() {
		err := s.srv.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		s.err <- err
	}()
	return s, nil
}

// progress builds the /progress snapshot, computing the conflict rate
// from the delta since the previous scrape.
func (s *Server) progress(o Options) Progress {
	m := o.Solver
	p := Progress{
		Component:     o.Component,
		UptimeMS:      time.Since(s.start).Milliseconds(),
		IncumbentCost: -1,
		BoundLower:    -1,
		BoundUpper:    -1,
		BoundGap:      -1,
	}
	if m == nil {
		return p
	}
	p.IncumbentCost = m.IncumbentCost.Value()
	p.BoundLower = m.BoundLower.Value()
	p.BoundUpper = m.BoundUpper.Value()
	p.BoundGap = m.BoundGap.Value()
	p.Conflicts = m.Conflicts.Value()
	p.Decisions = m.Decisions.Value()
	p.Propagations = m.Propagations.Value()
	p.Restarts = m.Restarts.Value()
	p.SolveCalls = m.SolveCalls.Value()
	p.BudgetHits = m.BudgetHits.Value()
	p.LearntDB = m.LearntDB.Value()
	p.ProofChecks = m.ProofChecks.Value()
	p.ProofSteps = m.ProofSteps.Value()
	p.ProofProbes = m.ProofProbes.Value()
	p.CoreExplainSolves = m.ExplainSolves.Value()
	p.CoreExplainSize = m.ExplainSize.Value()

	s.mu.Lock()
	now := time.Now()
	if !s.lastScrape.IsZero() {
		if dt := now.Sub(s.lastScrape).Seconds(); dt > 0 && p.Conflicts >= s.lastConflicts {
			p.ConflictsPerSec = float64(p.Conflicts-s.lastConflicts) / dt
		}
	}
	s.lastScrape = now
	s.lastConflicts = p.Conflicts
	s.mu.Unlock()
	return p
}

// PublishExplain exposes v as the /explain payload, replacing any earlier
// one. Callers publish a JSON-marshalable snapshot (the CLI uses a
// rendered core report), typically once, after an infeasible verdict was
// explained. Safe on nil.
func (s *Server) PublishExplain(v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.explain = v
	s.mu.Unlock()
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and returns the serve loop's terminal error,
// if any. Safe on nil.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	cerr := s.srv.Close()
	if err := <-s.err; err != nil {
		return err
	}
	return cerr
}
