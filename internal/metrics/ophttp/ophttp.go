// Package ophttp is the allocator's ops HTTP listener: a small stdlib
// server exposing the live state of a running solve for scraping and
// debugging. Routes:
//
//	/metrics          Prometheus text exposition of the metrics registry
//	/debug/vars       the same registry as JSON (expvar-style)
//	/healthz          liveness: "ok\n", 200 — or, when Options.Health
//	                  reports a problem, "degraded: <reason>\n", 503
//	/progress         JSON snapshot of the search (incumbent, bounds L/R,
//	                  conflict counters and the conflict rate between
//	                  scrapes, proof-check and core-explanation counters)
//	/explain          JSON of the last published infeasibility explanation
//	                  (minimized unsat core); {"status":"none"} until one
//	                  is published via Server.PublishExplain
//	/debug/flightrec  the flight recorder's event ring as JSON
//	/debug/pprof/*    the standard runtime profiling endpoints
//
// The long-running commands (allocate, solvesat, benchtab) start one via
// -ops-addr; see internal/cli. The allocation daemon (cmd/allocd) instead
// embeds the routes into its own job-API mux via NewHandlers/Register, so
// one listener serves both the API and the ops surface. Handlers only
// read atomics and snapshot under short locks, so scraping mid-solve does
// not perturb the search.
package ophttp

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"satalloc/internal/flightrec"
	"satalloc/internal/metrics"
)

// Options configures the ops routes. All fields are optional: endpoints
// whose source is absent serve empty-but-valid payloads, so a partially
// wired caller still gets a scrapeable server.
type Options struct {
	// Registry backs /metrics and /debug/vars.
	Registry *metrics.Registry
	// Solver backs /progress.
	Solver *metrics.SolverMetrics
	// Recorder backs /debug/flightrec.
	Recorder *flightrec.Recorder
	// Component names the process in /progress (e.g. "allocate").
	Component string
	// Health, when set, is consulted by /healthz: nil means healthy
	// ("ok\n", 200), an error degrades the endpoint to
	// "degraded: <error>\n" with status 503 — how the allocation daemon
	// surfaces journal or cache write failures to its load balancer
	// instead of only logging them. Unset keeps the always-ok behaviour.
	Health func() error
}

// Progress is the JSON payload of /progress: the live view of the search
// a human (or a dashboard) polls to diagnose a stall.
type Progress struct {
	Component string `json:"component,omitempty"`
	UptimeMS  int64  `json:"uptime_ms"`
	// Binary-search state: incumbent cost and the proven window [L,R]
	// with its gap; -1 means not yet known.
	IncumbentCost int64 `json:"incumbent_cost"`
	BoundLower    int64 `json:"bound_lower"`
	BoundUpper    int64 `json:"bound_upper"`
	BoundGap      int64 `json:"bound_gap"`
	// Cumulative search counters.
	Conflicts    int64 `json:"conflicts"`
	Decisions    int64 `json:"decisions"`
	Propagations int64 `json:"propagations"`
	Restarts     int64 `json:"restarts"`
	SolveCalls   int64 `json:"solve_calls"`
	BudgetHits   int64 `json:"budget_hits"`
	LearntDB     int64 `json:"learnt_db_size"`
	// ConflictsPerSec is the conflict rate since the previous /progress
	// scrape (0 on the first scrape).
	ConflictsPerSec float64 `json:"conflicts_per_sec"`
	// SOLVE-call latency percentiles in milliseconds, estimated from the
	// satalloc_opt_solve_call_duration_ms histogram with the same
	// interpolating estimator the load generator uses (metrics
	// HistogramSnapshot.Quantile); -1 until a SOLVE call has completed.
	SolveCallP50MS float64 `json:"solve_call_p50_ms"`
	SolveCallP90MS float64 `json:"solve_call_p90_ms"`
	SolveCallP99MS float64 `json:"solve_call_p99_ms"`
	// Proof-checking and core-explanation counters (0 when those modes
	// are off).
	ProofChecks       int64 `json:"proof_checks"`
	ProofSteps        int64 `json:"proof_steps"`
	ProofProbes       int64 `json:"proof_probes"`
	CoreExplainSolves int64 `json:"core_explain_solves"`
	CoreExplainSize   int64 `json:"core_explain_size"`
}

// Handlers is the ops route set, decoupled from any particular listener
// so it can be mounted either on a dedicated server (Start) or into a
// larger mux (the allocation daemon's API server). Create with
// NewHandlers, mount with Register.
type Handlers struct {
	o     Options
	start time.Time

	// Rate state between /progress scrapes, and the last explanation
	// published for /explain (nil until PublishExplain runs).
	//satlint:lock ophttp.scrape
	mu            sync.Mutex
	lastScrape    time.Time
	lastConflicts int64
	explain       any
}

// NewHandlers builds the ops route set over the given sources.
func NewHandlers(o Options) *Handlers {
	return &Handlers{o: o, start: time.Now()}
}

// Register mounts every ops route on the mux. The route set includes
// /healthz; callers embedding the handlers next to their own API must
// leave that path to Register (and steer it via Options.Health) rather
// than registering their own.
func (h *Handlers) Register(mux *http.ServeMux) {
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if h.o.Health != nil {
			if err := h.o.Health(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintf(w, "degraded: %v\n", err)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		h.o.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		h.o.Registry.WriteJSON(w)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(h.progress())
	})
	mux.HandleFunc("/explain", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		h.mu.Lock()
		v := h.explain
		h.mu.Unlock()
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if v == nil {
			enc.Encode(map[string]string{"status": "none"})
			return
		}
		enc.Encode(v)
	})
	mux.HandleFunc("/debug/flightrec", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		h.o.Recorder.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// progress builds the /progress snapshot, computing the conflict rate
// from the delta since the previous scrape.
func (h *Handlers) progress() Progress {
	m := h.o.Solver
	p := Progress{
		Component:     h.o.Component,
		UptimeMS:      time.Since(h.start).Milliseconds(),
		IncumbentCost:  -1,
		BoundLower:     -1,
		BoundUpper:     -1,
		BoundGap:       -1,
		SolveCallP50MS: -1,
		SolveCallP90MS: -1,
		SolveCallP99MS: -1,
	}
	if m == nil {
		return p
	}
	p.IncumbentCost = m.IncumbentCost.Value()
	p.BoundLower = m.BoundLower.Value()
	p.BoundUpper = m.BoundUpper.Value()
	p.BoundGap = m.BoundGap.Value()
	p.Conflicts = m.Conflicts.Value()
	p.Decisions = m.Decisions.Value()
	p.Propagations = m.Propagations.Value()
	p.Restarts = m.Restarts.Value()
	p.SolveCalls = m.SolveCalls.Value()
	p.BudgetHits = m.BudgetHits.Value()
	p.LearntDB = m.LearntDB.Value()
	p.ProofChecks = m.ProofChecks.Value()
	p.ProofSteps = m.ProofSteps.Value()
	p.ProofProbes = m.ProofProbes.Value()
	p.CoreExplainSolves = m.ExplainSolves.Value()
	p.CoreExplainSize = m.ExplainSize.Value()
	if snap := m.SolveCallMS.Snapshot(); snap.Count > 0 {
		p.SolveCallP50MS = snap.Quantile(0.50)
		p.SolveCallP90MS = snap.Quantile(0.90)
		p.SolveCallP99MS = snap.Quantile(0.99)
	}

	h.mu.Lock()
	now := time.Now()
	if !h.lastScrape.IsZero() {
		if dt := now.Sub(h.lastScrape).Seconds(); dt > 0 && p.Conflicts >= h.lastConflicts {
			p.ConflictsPerSec = float64(p.Conflicts-h.lastConflicts) / dt
		}
	}
	h.lastScrape = now
	h.lastConflicts = p.Conflicts
	h.mu.Unlock()
	return p
}

// PublishExplain exposes v as the /explain payload, replacing any earlier
// one. Callers publish a JSON-marshalable snapshot (the CLI uses a
// rendered core report), typically once, after an infeasible verdict was
// explained. Safe on nil.
func (h *Handlers) PublishExplain(v any) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.explain = v
	h.mu.Unlock()
}

// Server is a running ops listener. Create with Start, stop with Close.
type Server struct {
	ln  net.Listener
	srv *http.Server
	h   *Handlers

	// Err receives the Serve loop's terminal error (nil on clean Close);
	// buffered so the goroutine never blocks.
	err chan error
}

// Start listens on addr (host:port; ":0" picks a free port) and serves
// the ops routes in a background goroutine.
func Start(addr string, o Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ophttp: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, h: NewHandlers(o), err: make(chan error, 1)}
	mux := http.NewServeMux()
	s.h.Register(mux)
	s.srv = &http.Server{Handler: mux}
	go func() {
		err := s.srv.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		s.err <- err
	}()
	return s, nil
}

// PublishExplain exposes v on the server's /explain route (see
// Handlers.PublishExplain). Safe on nil.
func (s *Server) PublishExplain(v any) {
	if s == nil {
		return
	}
	s.h.PublishExplain(v)
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and returns the serve loop's terminal error,
// if any. Safe on nil.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	cerr := s.srv.Close()
	if err := <-s.err; err != nil {
		return err
	}
	return cerr
}
