package ophttp

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"satalloc/internal/flightrec"
	"satalloc/internal/metrics"
)

func startTestServer(t *testing.T, o Options) *Server {
	t.Helper()
	s, err := Start("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return s
}

func get(t *testing.T, s *Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestEndpoints(t *testing.T) {
	reg := metrics.New()
	m := metrics.NewSolverMetrics(reg)
	rec := flightrec.New(16)
	s := startTestServer(t, Options{Registry: reg, Solver: m, Recorder: rec, Component: "test"})

	// Simulate a solve in flight.
	hook := m.SearchHook()
	hook(1200, 300, 90000, 7, 400, 100, 300, 42)
	m.ConflictHook()(5, 3, 7)
	m.RecordBounds(10, 25)
	m.RecordIncumbent(25)
	m.RecordIter(40*time.Millisecond, false)
	rec.Record("sat.restart", "conflicts=1200")

	if code, body := get(t, s, "/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body := get(t, s, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9]+$`)
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sample.MatchString(line) {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
	for _, want := range []string{
		"satalloc_sat_conflicts_total 1200",
		"satalloc_opt_bound_lower 10",
		"satalloc_opt_bound_upper 25",
		`satalloc_sat_lbd_bucket{le="6"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	code, body = get(t, s, "/progress")
	if code != 200 {
		t.Fatalf("/progress = %d", code)
	}
	var p Progress
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, body)
	}
	if p.Component != "test" || p.Conflicts != 1200 || p.IncumbentCost != 25 || p.BoundGap != 15 {
		t.Fatalf("/progress payload wrong: %+v", p)
	}
	// One 40ms SOLVE call was recorded, so the latency percentiles are
	// live and ordered.
	if p.SolveCallP50MS <= 0 || p.SolveCallP50MS > p.SolveCallP99MS {
		t.Fatalf("/progress solve-call percentiles wrong: %+v", p)
	}

	// A second scrape after more conflicts reports a positive rate.
	hook(2400, 600, 180000, 9, 500, 120, 280, 30)
	time.Sleep(10 * time.Millisecond)
	_, body = get(t, s, "/progress")
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatal(err)
	}
	if p.ConflictsPerSec <= 0 {
		t.Fatalf("second scrape must report a conflict rate: %+v", p)
	}

	code, body = get(t, s, "/debug/flightrec")
	if code != 200 {
		t.Fatalf("/debug/flightrec = %d", code)
	}
	var d flightrec.Dump
	if err := json.Unmarshal([]byte(body), &d); err != nil || len(d.Events) != 1 || d.Events[0].Kind != "sat.restart" {
		t.Fatalf("/debug/flightrec wrong: %+v err=%v", d, err)
	}

	code, body = get(t, s, "/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars = %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if string(vars["satalloc_sat_conflicts_total"]) != "2400" {
		t.Fatalf("/debug/vars conflicts = %s", vars["satalloc_sat_conflicts_total"])
	}

	if code, body := get(t, s, "/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d %q", code, body)
	}
}

// TestEmptyOptions proves every endpoint stays up with nothing wired —
// the partially configured server must be scrapeable, not panic.
func TestEmptyOptions(t *testing.T) {
	s := startTestServer(t, Options{})
	if code, _ := get(t, s, "/healthz"); code != 200 {
		t.Fatal("healthz down")
	}
	if code, _ := get(t, s, "/metrics"); code != 200 {
		t.Fatal("metrics down")
	}
	_, body := get(t, s, "/progress")
	var p Progress
	if err := json.Unmarshal([]byte(body), &p); err != nil || p.IncumbentCost != -1 {
		t.Fatalf("empty progress wrong: %+v err=%v", p, err)
	}
	if p.SolveCallP99MS != -1 {
		t.Fatalf("no SOLVE calls yet, p99 must be -1: %+v", p)
	}
	_, body = get(t, s, "/debug/flightrec")
	var d flightrec.Dump
	if err := json.Unmarshal([]byte(body), &d); err != nil || len(d.Events) != 0 {
		t.Fatalf("empty flightrec wrong: %+v err=%v", d, err)
	}
}

func TestStartRejectsBusyAddr(t *testing.T) {
	s := startTestServer(t, Options{})
	if _, err := Start(s.Addr(), Options{}); err == nil {
		t.Fatal("second listener on the same address must fail")
	}
}

func TestExplainRoute(t *testing.T) {
	s := startTestServer(t, Options{Registry: metrics.New(), Recorder: flightrec.New(4)})

	code, body := get(t, s, "/explain")
	if code != 200 {
		t.Fatalf("/explain before publish: status %d", code)
	}
	var none map[string]string
	if err := json.Unmarshal([]byte(body), &none); err != nil || none["status"] != "none" {
		t.Fatalf("/explain before publish = %q, want {\"status\":\"none\"}", body)
	}

	s.PublishExplain(struct {
		Status string   `json:"status"`
		Core   []string `json:"core"`
	}{"infeasible", []string{"deadline(task7)", "memory(ecu2)"}})
	code, body = get(t, s, "/explain")
	if code != 200 {
		t.Fatalf("/explain after publish: status %d", code)
	}
	var pub struct {
		Status string   `json:"status"`
		Core   []string `json:"core"`
	}
	if err := json.Unmarshal([]byte(body), &pub); err != nil {
		t.Fatalf("/explain not JSON: %v\n%s", err, body)
	}
	if pub.Status != "infeasible" || len(pub.Core) != 2 || pub.Core[0] != "deadline(task7)" {
		t.Fatalf("/explain payload mangled: %+v", pub)
	}

	// Re-publishing replaces the payload; nil receiver is a no-op.
	s.PublishExplain(map[string]string{"status": "feasible"})
	if _, body := get(t, s, "/explain"); !strings.Contains(body, "feasible") {
		t.Fatalf("republish not visible: %s", body)
	}
	var nilSrv *Server
	nilSrv.PublishExplain("x")
}
