GO ?= go

.PHONY: check vet build test race bench

## check: the full CI gate — vet, build, and the race-enabled test suite.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: the solver micro-benchmarks (hooks disabled), for regression spotting.
bench:
	$(GO) test -bench . -benchtime 2x -run '^$$' ./internal/sat
