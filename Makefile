GO ?= go
FUZZTIME ?= 10s

.PHONY: check vet build test race fuzz bench ops-smoke

## check: the full CI gate — vet, build, the race-enabled test suite, and
## a short fuzz smoke run of every parser-hardening target.
check: vet build race fuzz

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## fuzz: smoke-run the native fuzz targets for $(FUZZTIME) each. Longer
## campaigns: go test -fuzz FuzzParseDIMACS -fuzztime 10m ./internal/sat
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzParseDIMACS$$' -fuzztime $(FUZZTIME) ./internal/sat
	$(GO) test -run '^$$' -fuzz '^FuzzParseOPB$$' -fuzztime $(FUZZTIME) ./internal/sat
	$(GO) test -run '^$$' -fuzz '^FuzzReadSpec$$' -fuzztime $(FUZZTIME) ./internal/core

## bench: the solver micro-benchmarks (hooks disabled), for regression spotting.
bench:
	$(GO) test -bench . -benchtime 2x -run '^$$' ./internal/sat

## ops-smoke: end-to-end check of the ops HTTP listener — builds the real
## allocate binary, scrapes /healthz, /metrics and /progress against a
## live process, and validates the Prometheus exposition.
ops-smoke:
	$(GO) test -run 'TestOps' -count 1 -v ./cmd/allocate
