GO ?= go
FUZZTIME ?= 10s

.PHONY: check vet lint satlint proof-check build test race race-parallel fuzz bench bench-json bench-smoke encode-stats equisat ops-smoke serve-smoke load-smoke race-serve

## check: the full CI gate — vet, lint, proof replay, build, the
## race-enabled test suite, and a short fuzz smoke run of every
## parser-hardening target.
check: vet lint proof-check build race fuzz

vet:
	$(GO) vet ./...

## lint: all static analysis — go vet plus the repo's own satlint checks
## (nilguard, metricreg, faultsite, hotpath, atomicalign, and the §15
## concurrency contracts: lockorder, goroutine, ctxflow, blockhold)
## (nil-safe instruments, the DESIGN.md metric registry, fault sites,
## allocation-free hot paths, 64-bit atomic alignment).
lint: vet satlint

satlint:
	$(GO) run ./cmd/satlint ./...

## proof-check: the verdict-observability gate — the DRAT-modulo-PB
## checker's own tests, every seeded corpus UNSAT replayed through it,
## the core-extraction minimality checks, the solvesat DRAT round trip,
## and the Table-1/Table-2 optimality-certificate acceptance tests.
proof-check:
	$(GO) test -count 1 ./internal/proof
	$(GO) test -count 1 -run 'Proof|Certified|SeedCorpus|Explain' \
		./internal/sat ./internal/opt ./internal/core \
		./internal/experiments ./cmd/solvesat ./cmd/allocate

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## fuzz: smoke-run the native fuzz targets for $(FUZZTIME) each. Longer
## campaigns: go test -fuzz FuzzParseDIMACS -fuzztime 10m ./internal/sat
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzParseDIMACS$$' -fuzztime $(FUZZTIME) ./internal/sat
	$(GO) test -run '^$$' -fuzz '^FuzzParseOPB$$' -fuzztime $(FUZZTIME) ./internal/sat
	$(GO) test -run '^$$' -fuzz '^FuzzReadSpec$$' -fuzztime $(FUZZTIME) ./internal/core

## race-parallel: the clause-sharing portfolio's concurrency tests under the
## race detector, runnable on their own (CI gives them a dedicated step).
## baseline rides along: its parallel SA restarts carry the same
## WaitGroup spawn contract satlint's goroutine check enforces.
race-parallel:
	$(GO) test -race -count 1 -run Parallel ./internal/sat ./internal/opt ./internal/core ./internal/baseline

## bench: the solver micro-benchmarks (hooks disabled), for regression spotting.
bench:
	$(GO) test -bench . -benchtime 2x -run '^$$' ./internal/sat

## bench-json: run the top-level paper benchmarks once and write a dated
## machine-readable data point for the performance trajectory. The newest
## existing BENCH_*.json (excluding today's) is the baseline for the
## derived literals_reduction_vs_baseline fields.
bench-json:
	$(GO) test -bench . -benchtime 1x -run '^$$' -timeout 60m . \
		| $(GO) run ./internal/tools/bench2json \
			-baseline "$$(ls BENCH_*.json 2>/dev/null | grep -v BENCH_$$(date +%Y%m%d).json | sort | tail -1)" \
			-o BENCH_$$(date +%Y%m%d).json

## bench-smoke: one-iteration benchmark pass piped through bench2json — keeps
## both the benchmarks and the JSON converter from rotting, without timing.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' -timeout 60m . \
		| $(GO) run ./internal/tools/bench2json > /dev/null

## encode-stats: bit-blast the Table-1 specs (compile only, no solving)
## under the legacy encoder and both structural-hashing comparator
## variants, and print the gates-emitted/folded/reused accounting table.
encode-stats:
	$(GO) run ./cmd/benchtab -table encode

## equisat: the encoder equivalence gate — every fuzz-seeded formula and
## the Table-1/Table-2 specs encoded with hashing on/off and each
## comparator variant must produce identical verdicts and costs, checked
## under the race detector.
equisat:
	$(GO) test -race -count 1 -run 'Equisat|HashingReduces' ./internal/bv ./internal/opt

## ops-smoke: end-to-end check of the ops HTTP listener — builds the real
## allocate binary, scrapes /healthz, /metrics and /progress against a
## live process, and validates the Prometheus exposition.
ops-smoke:
	$(GO) test -run 'TestOps' -count 1 -v ./cmd/allocate

## serve-smoke: end-to-end crash-recovery check of the allocation daemon —
## builds the real allocd and workgen binaries, submits a workgen -count
## corpus over HTTP, kill -9s the daemon mid-flight, restarts it on the
## same data dir, and asserts the journal replay finishes every job, the
## cache survives, and SIGTERM drains cleanly.
serve-smoke:
	$(GO) test -run 'TestServeSmoke' -count 1 -v ./cmd/allocd

## load-smoke: end-to-end check of the load generator and the tenant
## observability surface — builds the real allocd, drives ~100 jobs
## across two tenants through loadgen's open loop, and asserts the
## report's per-tenant percentiles plus the daemon's tenant-labeled
## /metrics series and /jobs/summary view.
load-smoke:
	$(GO) test -run 'TestLoadSmoke' -count 1 -v ./cmd/loadgen

## race-serve: the allocation service's concurrency suite under the race
## detector — including the chaos test (hundreds of concurrent jobs with
## faults firing at every serve site) and the two-stage signal handler —
## plus every other package whose locks and spawns carry §15 annotations
## (obs, flightrec, faultinject; metrics has its own CI race step).
race-serve:
	$(GO) test -race -count 1 ./internal/serve ./internal/cli ./internal/obs ./internal/flightrec ./internal/faultinject
