// Quickstart: define a small distributed system in code, run the optimal
// allocator, and print the resulting deployment.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"satalloc/internal/core"
	"satalloc/internal/model"
)

func main() {
	// Two ECUs joined by a token-ring bus. Slot lengths are multiples of
	// 2 ticks, at most 8 quanta per station.
	sys := &model.System{
		Name: "quickstart",
		ECUs: []*model.ECU{
			{ID: 0, Name: "engine"},
			{ID: 1, Name: "body"},
		},
		Media: []*model.Medium{{
			ID: 0, Name: "ring", Kind: model.TokenRing, ECUs: []int{0, 1},
			TimePerUnit: 1, FrameOverhead: 1, SlotQuantum: 2, MaxSlots: 8,
		}},
	}

	// Three periodic tasks; the sensor feeds the actuator once per period.
	sys.Tasks = []*model.Task{
		{
			ID: 0, Name: "sensor", Period: 40, Deadline: 30,
			WCET:     map[int]int64{0: 6, 1: 7},
			Messages: []int{0},
		},
		{
			ID: 1, Name: "actuator", Period: 40, Deadline: 40,
			WCET: map[int]int64{0: 8, 1: 8},
			// The actuator hardware hangs off the body controller.
			Allowed: []int{1},
		},
		{
			ID: 2, Name: "monitor", Period: 20, Deadline: 20,
			WCET: map[int]int64{0: 9, 1: 10},
		},
	}
	sys.Messages = []*model.Message{
		{ID: 0, Name: "setpoint", From: 0, To: 1, Size: 3, Deadline: 25},
	}

	// Minimize the token rotation time; the solver proves the optimum.
	sol, err := core.Solve(sys, core.Config{Objective: core.MinimizeTRT})
	if err != nil {
		log.Fatal(err)
	}
	if !sol.Feasible {
		log.Fatal("no schedulable allocation exists")
	}
	fmt.Print(core.Explain(sys, sol))
	fmt.Printf("\nTDMA slots: ")
	for _, e := range sys.ECUs {
		fmt.Printf("%s=%d ", e.Name, sol.Allocation.SlotLen[[2]int{0, e.ID}])
	}
	fmt.Printf("(round length %d ticks — provably minimal)\n",
		sol.Allocation.RoundLength(sys.Media[0]))
}
