// Baselines: the Table 1 story in miniature — greedy first-fit, simulated
// annealing (the approach of the paper's reference [5]), and the SAT-based
// binary search on the same instance, showing that the heuristics may land
// above the optimum while the SAT approach proves it.
//
//	go run ./examples/baselines
package main

import (
	"fmt"
	"log"
	"time"

	"satalloc/internal/baseline"
	"satalloc/internal/core"
	"satalloc/internal/encode"
	"satalloc/internal/workload"
)

func main() {
	sys := workload.Partition(workload.T43(), 16)
	opts := encode.Options{Objective: encode.MinimizeTRT, ObjectiveMedium: -1}
	fmt.Printf("Instance: %d tasks, %d messages, %d ECUs on a token ring; objective: min TRT\n\n",
		len(sys.Tasks), len(sys.Messages), len(sys.ECUs))

	start := time.Now()
	greedy := baseline.GreedyFirstFit(sys, opts)
	report("greedy first-fit", greedy.Feasible, greedy.Cost, time.Since(start), greedy.Evaluated)

	saOpts := baseline.DefaultSAOptions()
	saOpts.Encode = opts
	start = time.Now()
	sa := baseline.SimulatedAnnealing(sys, saOpts)
	report("simulated annealing [5]", sa.Feasible, sa.Cost, time.Since(start), sa.Evaluated)

	start = time.Now()
	sol, err := core.Solve(sys, core.Config{Objective: core.MinimizeTRT})
	if err != nil {
		log.Fatal(err)
	}
	report("SAT binary search", sol.Feasible, sol.Cost, time.Since(start), sol.SolveCalls)

	if sol.Feasible {
		fmt.Printf("\nThe SAT result is *proven* minimal; the heuristics can only be lucky.\n")
		if sa.Feasible && sa.Cost > sol.Cost {
			fmt.Printf("Here SA landed %d ticks above the optimum (cf. 8.7ms vs 8.55ms in Table 1).\n",
				sa.Cost-sol.Cost)
		}
		if greedy.Feasible && greedy.Cost > sol.Cost {
			fmt.Printf("Greedy landed %d ticks above the optimum.\n", greedy.Cost-sol.Cost)
		}
	}
}

func report(name string, feasible bool, cost int64, d time.Duration, evals int) {
	if !feasible {
		fmt.Printf("%-24s: infeasible (%v)\n", name, d.Round(time.Millisecond))
		return
	}
	fmt.Printf("%-24s: TRT = %3d ticks   (%8v, %d evaluations/calls)\n",
		name, cost, d.Round(time.Millisecond), evals)
}
