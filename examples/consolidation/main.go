// Consolidation: the extension objective MinimizeUsedECUs — pack a light
// workload onto as few ECUs as schedulability (and separation constraints)
// allow, then print the deployment report with ASCII schedules.
//
//	go run ./examples/consolidation
package main

import (
	"fmt"
	"log"

	"satalloc/internal/core"
	"satalloc/internal/model"
	"satalloc/internal/report"
)

func main() {
	sys := &model.System{Name: "consolidation"}
	for i := 0; i < 6; i++ {
		sys.ECUs = append(sys.ECUs, &model.ECU{ID: i, Name: fmt.Sprintf("node%d", i)})
	}
	sys.Media = []*model.Medium{{
		ID: 0, Name: "backbone", Kind: model.CAN,
		ECUs: []int{0, 1, 2, 3, 4, 5}, TimePerUnit: 1, FrameOverhead: 1,
	}}
	// Eight light tasks; two are redundant replicas that must stay apart.
	for i := 0; i < 8; i++ {
		wcet := map[int]int64{}
		for p := 0; p < 6; p++ {
			wcet[p] = int64(4 + i%3)
		}
		sys.Tasks = append(sys.Tasks, &model.Task{
			ID: i, Name: fmt.Sprintf("svc%d", i),
			Period: 60 + int64(i%4)*20, Deadline: 60 + int64(i%4)*20,
			WCET: wcet,
		})
	}
	sys.Tasks[0].Separation = []int{1}
	sys.Tasks[1].Separation = []int{0}

	sol, err := core.Solve(sys, core.Config{Objective: core.MinimizeUsedECUs})
	if err != nil {
		log.Fatal(err)
	}
	if !sol.Feasible {
		log.Fatal("no schedulable allocation exists")
	}
	fmt.Printf("minimum number of ECUs: %d (proven)\n\n", sol.Cost)
	fmt.Print(report.Full(sys, sol.Allocation, 160, 72))
	fmt.Println("\nThe redundant pair svc0/svc1 is kept on distinct nodes; everything")
	fmt.Println("else is packed as tightly as the response-time analysis allows.")
}
