// Automotive: the paper's motivating scenario — an industrial-size task
// set on a heterogeneous hierarchical architecture (architecture C of
// Figure 2, with the upper bus swapped for CAN as in §6), allocated
// optimally, then cross-checked by discrete-event simulation.
//
//	go run ./examples/automotive
package main

import (
	"fmt"
	"log"

	"satalloc/internal/core"
	"satalloc/internal/model"
	"satalloc/internal/rta"
	"satalloc/internal/sim"
	"satalloc/internal/workload"
)

func main() {
	// Architecture C: two buses sharing application ECU 0 as the gateway;
	// the upper bus becomes CAN (heterogeneous media, as in §6).
	arch := workload.SwapMediumToCAN(workload.ArchitectureC(), 1)
	sys := workload.Partition(workload.HierarchicalT43(arch), 14)

	fmt.Printf("System %q: %d ECUs, %d media (%s + %s), %d tasks, %d messages\n\n",
		sys.Name, len(sys.ECUs), len(sys.Media),
		sys.Media[0].Kind, sys.Media[1].Kind, len(sys.Tasks), len(sys.Messages))

	sol, err := core.Solve(sys, core.Config{
		Objective: core.MinimizeSumTRT,
		Logf: func(format string, args ...any) {
			fmt.Printf("  [search] "+format+"\n", args...)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if !sol.Feasible {
		log.Fatal("no schedulable allocation exists")
	}

	fmt.Printf("\nProven-optimal ΣTRT: %d ticks (%d SOLVE calls, %d vars, %v)\n\n",
		sol.Cost, sol.SolveCalls, sol.BoolVars, sol.Duration)

	// Per-ECU deployment summary.
	byECU := map[int][]string{}
	for _, t := range sys.Tasks {
		p := sol.Allocation.TaskECU[t.ID]
		byECU[p] = append(byECU[p], t.Name)
	}
	for _, e := range sys.ECUs {
		if tasks, ok := byECU[e.ID]; ok {
			fmt.Printf("  %-4s: %v\n", e.Name, tasks)
		}
	}

	// Validate the analytical bounds against the discrete-event simulator:
	// observed worst-case responses must stay within the analyzed ones.
	fmt.Println("\nSimulation cross-check (per-ECU preemptive scheduling):")
	for _, e := range sys.ECUs {
		obs := sim.SimulateECU(sys, sol.Allocation, e.ID, 20000)
		for id, o := range obs {
			bound := sol.Analysis.TaskResponse[id]
			status := "OK"
			if o.MaxResponse > bound {
				status = "VIOLATION"
			}
			fmt.Printf("  %-6s on %-4s: simulated %3d ≤ analyzed %3d  %s\n",
				sys.TaskByID(id).Name, e.Name, o.MaxResponse, bound, status)
		}
	}
	for _, med := range sys.Media {
		var obs map[int]*sim.MsgObservation
		if med.Kind == model.TokenRing {
			obs = sim.SimulateTokenRing(sys, sol.Allocation, med.ID, 20000)
		} else {
			obs = sim.SimulatePriorityBus(sys, sol.Allocation, med.ID, 20000)
		}
		for id, o := range obs {
			if o.Frames == 0 {
				continue
			}
			// The simulator releases each stream J ticks early (worst-case
			// arrival jitter), so the observed figure includes the frame's
			// own inherited jitter, which the per-hop bound w excludes: the
			// sound comparison is observed ≤ w + J.
			r := sol.Analysis.MsgResponse[[2]int{id, med.ID}]
			hop := 0
			for i, k := range sol.Allocation.Route[id] {
				if k == med.ID {
					hop = i
				}
			}
			bound := r + rta.HopJitter(sys, sol.Allocation, id, hop)
			status := "OK"
			if o.MaxResponse > bound {
				status = "VIOLATION"
			}
			fmt.Printf("  %-6s on %-9s: simulated %3d ≤ analyzed %3d (+jitter)  %s\n",
				sys.MessageByID(id).Name, med.Name, o.MaxResponse, bound, status)
		}
	}
}
