// Hierarchical: reproduce Figure 1 of the paper — path closures of a
// three-bus topology — then allocate a workload whose messages must cross
// gateways, and show the chosen multi-hop routes with their per-medium
// local deadlines and the jitter each hop inherits (§4 of the paper).
//
//	go run ./examples/hierarchical
package main

import (
	"fmt"
	"log"

	"satalloc/internal/core"
	"satalloc/internal/model"
	"satalloc/internal/rta"
)

func main() {
	// The exact topology of Figure 1: k1 = {p1,p2,p3}, k2 = {p2,p4},
	// k3 = {p3,p5}; p2 and p3 are the gateways.
	sys := &model.System{Name: "figure1"}
	for i := 1; i <= 5; i++ {
		e := &model.ECU{ID: i, Name: fmt.Sprintf("p%d", i)}
		if i == 2 || i == 3 {
			e.ServiceCost = 2 // gateway forwarding fee
		}
		sys.ECUs = append(sys.ECUs, e)
	}
	ring := func(id int, name string, ecus ...int) *model.Medium {
		return &model.Medium{
			ID: id, Name: name, Kind: model.TokenRing, ECUs: ecus,
			TimePerUnit: 1, FrameOverhead: 1, SlotQuantum: 2, MaxSlots: 8,
		}
	}
	sys.Media = []*model.Medium{
		ring(1, "k1", 1, 2, 3),
		ring(2, "k2", 2, 4),
		ring(3, "k3", 3, 5),
	}

	fmt.Println("Path closures of the Figure 1 topology:")
	for i, pc := range sys.PathClosures() {
		fmt.Printf("  ph%d = %s\n", i, pc)
	}

	// A producer pinned to p4 (on k2 only) and a consumer pinned to p5 (on
	// k3 only): every route must traverse k2 k1 k3 through both gateways.
	sys.Tasks = []*model.Task{
		{ID: 0, Name: "producer", Period: 200, Deadline: 200,
			WCET: map[int]int64{4: 10}, Messages: []int{0}},
		{ID: 1, Name: "consumer", Period: 200, Deadline: 200,
			WCET: map[int]int64{5: 10}},
		{ID: 2, Name: "ctrl", Period: 100, Deadline: 100,
			WCET: map[int]int64{1: 8, 2: 8, 3: 8}},
	}
	sys.Messages = []*model.Message{
		{ID: 0, Name: "telemetry", From: 0, To: 1, Size: 2, Deadline: 160},
	}

	sol, err := core.Solve(sys, core.Config{Objective: core.MinimizeSumTRT})
	if err != nil {
		log.Fatal(err)
	}
	if !sol.Feasible {
		log.Fatal("no schedulable allocation exists")
	}
	fmt.Printf("\nOptimal ΣTRT over all media: %d ticks\n\n", sol.Cost)

	msg := sys.Messages[0]
	route := sol.Allocation.Route[msg.ID]
	fmt.Printf("Message %q route: %v (gateway fees: %d)\n",
		msg.Name, route, sys.PathServiceCost(route))
	for hop, k := range route {
		d := sol.Allocation.MsgLocalDeadline[[2]int{msg.ID, k}]
		j := rta.HopJitter(sys, sol.Allocation, msg.ID, hop)
		r := sol.Analysis.MsgResponse[[2]int{msg.ID, k}]
		fmt.Printf("  hop %d on %s: local deadline %d, inherited jitter %d, response %d\n",
			hop, sys.MediumByID(k).Name, d, j, r)
	}
	fmt.Printf("End-to-end bound: %d ≤ Δ = %d\n", sol.Analysis.MsgEndToEnd[msg.ID], msg.Deadline)
}
